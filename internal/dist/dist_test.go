package dist

import (
	"math"
	"testing"
	"testing/quick"

	"tsperr/internal/numeric"
)

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, lambda := range []float64{0.1, 1, 5, 40} {
		p := Poisson{Lambda: lambda}
		var sum float64
		for k := 0; k < 400; k++ {
			sum += p.PMF(k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("lambda=%v: PMF sums to %v", lambda, sum)
		}
	}
}

func TestPoissonCDFMatchesPMF(t *testing.T) {
	p := Poisson{Lambda: 7.5}
	var run float64
	for k := 0; k < 40; k++ {
		run += p.PMF(k)
		if got := p.CDF(float64(k)); math.Abs(got-run) > 1e-9 {
			t.Fatalf("CDF(%d)=%v, cumulative PMF=%v", k, got, run)
		}
	}
}

func TestPoissonCDFLargeLambdaNormalLimit(t *testing.T) {
	p := Poisson{Lambda: 2e6}
	// At the mean, CDF should be ~0.5.
	if got := p.CDF(p.Lambda); math.Abs(got-0.5) > 1e-3 {
		t.Errorf("CDF at mean = %v", got)
	}
	// One sigma above mean ~0.841.
	if got := p.CDF(p.Lambda + math.Sqrt(p.Lambda)); math.Abs(got-0.8413) > 5e-3 {
		t.Errorf("CDF at mean+sigma = %v", got)
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	p := Poisson{Lambda: 3}
	if p.CDF(-1) != 0 {
		t.Error("CDF of negative should be 0")
	}
	z := Poisson{Lambda: 0}
	if z.PMF(0) != 1 || z.PMF(1) != 0 || z.CDF(0) != 1 {
		t.Error("zero-rate Poisson is a point mass at 0")
	}
}

func TestPoissonBinomialMatchesBinomial(t *testing.T) {
	// Identical probabilities reduce to a binomial distribution.
	const n, pr = 12, 0.3
	ps := make([]float64, n)
	for i := range ps {
		ps[i] = pr
	}
	pb := NewPoissonBinomial(ps)
	for k := 0; k <= n; k++ {
		binom := math.Exp(lchoose(n, k)) * math.Pow(pr, float64(k)) * math.Pow(1-pr, float64(n-k))
		if math.Abs(pb.PMF(k)-binom) > 1e-12 {
			t.Errorf("PMF(%d)=%v, binomial=%v", k, pb.PMF(k), binom)
		}
	}
	if math.Abs(pb.Mean()-n*pr) > 1e-12 {
		t.Errorf("mean=%v", pb.Mean())
	}
	if math.Abs(pb.Var()-n*pr*(1-pr)) > 1e-12 {
		t.Errorf("var=%v", pb.Var())
	}
}

func lchoose(n, k int) float64 {
	ln, _ := math.Lgamma(float64(n) + 1)
	lk, _ := math.Lgamma(float64(k) + 1)
	lnk, _ := math.Lgamma(float64(n-k) + 1)
	return ln - lk - lnk
}

func TestPoissonBinomialPoissonApproximation(t *testing.T) {
	// Many indicators with tiny probabilities: PB should be close to Poisson,
	// and the distance should respect Le Cam's bound.
	rng := numeric.NewRNG(17)
	ps := make([]float64, 3000)
	for i := range ps {
		ps[i] = 0.002 * rng.Float64()
	}
	pb := NewPoissonBinomial(ps)
	po := Poisson{Lambda: pb.Mean()}
	tv := TotalVariationInt(pb.PMF, po.PMF, len(ps))
	bound := pb.LeCamBound()
	if tv > bound {
		t.Errorf("total variation %v exceeds Le Cam bound %v", tv, bound)
	}
	if tv > 0.01 {
		t.Errorf("approximation unexpectedly poor: %v", tv)
	}
}

func TestPoissonBinomialCDFMonotone(t *testing.T) {
	pb := NewPoissonBinomial([]float64{0.1, 0.9, 0.5, 0.25})
	prev := -1.0
	for k := -1; k <= 5; k++ {
		c := pb.CDF(float64(k))
		if c < prev {
			t.Fatalf("CDF not monotone at %d", k)
		}
		prev = c
	}
	if pb.CDF(4) < 1-1e-12 {
		t.Error("CDF at max support should be 1")
	}
}

func TestDiscreteMoments(t *testing.T) {
	d := Discrete{Xs: []float64{1, 2, 3}, Ps: []float64{0.2, 0.5, 0.3}}
	if m := d.Mean(); math.Abs(m-2.1) > 1e-12 {
		t.Errorf("mean=%v", m)
	}
	if v := d.Var(); math.Abs(v-0.49) > 1e-12 {
		t.Errorf("var=%v", v)
	}
	if m2 := d.Moment(2); math.Abs(m2-(0.2+2+2.7)) > 1e-12 {
		t.Errorf("second raw moment=%v", m2)
	}
	if am := d.AbsMoment(3); math.Abs(am-d.Moment(3)) > 1e-12 {
		t.Error("abs moment should equal raw moment for positive support")
	}
}

func TestDiscreteUniformAndScale(t *testing.T) {
	d := NewDiscreteUniform([]float64{2, 4, 6})
	if math.Abs(d.Mean()-4) > 1e-12 {
		t.Errorf("mean=%v", d.Mean())
	}
	s := d.Scale(0.5)
	if math.Abs(s.Mean()-2) > 1e-12 {
		t.Errorf("scaled mean=%v", s.Mean())
	}
	if math.Abs(s.Var()-0.25*d.Var()) > 1e-12 {
		t.Errorf("scaled var=%v vs %v", s.Var(), d.Var())
	}
}

func TestDiscreteCDF(t *testing.T) {
	d := Discrete{Xs: []float64{0.5, 1.5}, Ps: []float64{0.4, 0.6}}
	if d.CDF(0) != 0 || math.Abs(d.CDF(1)-0.4) > 1e-12 || d.CDF(2) != 1 {
		t.Error("discrete CDF wrong")
	}
}

func TestNormalQuantileCDFRoundtrip(t *testing.T) {
	n := Normal{Mu: 3, Sigma: 0.5}
	for _, p := range []float64{0.01, 0.5, 0.99} {
		if got := n.CDF(n.Quantile(p)); math.Abs(got-p) > 1e-10 {
			t.Errorf("roundtrip at %v gave %v", p, got)
		}
	}
	if n.Mean() != 3 || n.Var() != 0.25 {
		t.Error("normal moments")
	}
}

func TestKolmogorovMetric(t *testing.T) {
	f := Normal{Mu: 0, Sigma: 1}
	g := Normal{Mu: 0.5, Sigma: 1}
	grid := LinearGrid(-6, 6, 2000)
	d := Kolmogorov(f.CDF, g.CDF, grid)
	// Known: sup distance between N(0,1) and N(d,1) is 2*Phi(d/2)-1.
	want := 2*numeric.NormalCDF(0.25) - 1
	if math.Abs(d-want) > 1e-4 {
		t.Errorf("Kolmogorov distance %v, want %v", d, want)
	}
	if Kolmogorov(f.CDF, f.CDF, grid) != 0 {
		t.Error("self distance must be 0")
	}
}

func TestKolmogorovSymmetryProperty(t *testing.T) {
	grid := LinearGrid(-8, 8, 500)
	f := func(mu1, mu2 float64) bool {
		mu1 = math.Mod(mu1, 3)
		mu2 = math.Mod(mu2, 3)
		a := Normal{Mu: mu1, Sigma: 1}
		b := Normal{Mu: mu2, Sigma: 1}
		d1 := Kolmogorov(a.CDF, b.CDF, grid)
		d2 := Kolmogorov(b.CDF, a.CDF, grid)
		return math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmpiricalCDF(t *testing.T) {
	cdf := EmpiricalCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := cdf(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ecdf(%v)=%v, want %v", c.x, got, c.want)
		}
	}
	empty := EmpiricalCDF(nil)
	if empty(1) != 0 {
		t.Error("empty ecdf should be 0")
	}
}

func TestTotalVariationIntBounds(t *testing.T) {
	p := Poisson{Lambda: 2}
	q := Poisson{Lambda: 2}
	if TotalVariationInt(p.PMF, q.PMF, 100) != 0 {
		t.Error("identical distributions must be at distance 0")
	}
	r := Poisson{Lambda: 50}
	d := TotalVariationInt(p.PMF, r.PMF, 400)
	if d < 0.9 || d > 1 {
		t.Errorf("very different Poissons should be near distance 1, got %v", d)
	}
}

func TestLinearGrid(t *testing.T) {
	g := LinearGrid(0, 1, 4)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(g) != 5 {
		t.Fatalf("len=%d", len(g))
	}
	for i := range g {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Errorf("grid[%d]=%v", i, g[i])
		}
	}
	if got := LinearGrid(2, 3, 0); len(got) != 2 {
		t.Error("degenerate n should clamp to 1 interval")
	}
}
