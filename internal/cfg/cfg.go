// Package cfg builds control flow graphs over TS-V8 programs, profiles edge
// activation probabilities and basic-block execution counts from simulator
// runs, and computes strongly connected components with Tarjan's algorithm
// plus their condensation topological order — exactly the machinery Section
// 4.2 of the paper needs to set up and order its linear systems.
package cfg

import (
	"fmt"
	"sort"

	"tsperr/internal/cpu"
	"tsperr/internal/isa"
)

// Block is a basic block: instructions [Start, End) of the program.
type Block struct {
	ID    int
	Start int
	End   int
	// Succs lists statically known successor block IDs.
	Succs []int
}

// NumInsts returns the instruction count n_i of the block.
func (b *Block) NumInsts() int { return b.End - b.Start }

// Edge identifies a CFG edge by block IDs.
type Edge struct {
	From, To int
}

// Graph is a program CFG.
type Graph struct {
	Prog    *isa.Program
	Blocks  []Block
	BlockOf []int // instruction index -> block ID
}

// Build constructs the CFG. Leaders are the entry, every control-transfer
// target, and every instruction following a control transfer. Indirect jumps
// (jr) contribute no static successors; their edges appear during profiling.
func Build(p *isa.Program) (*Graph, error) {
	n := len(p.Insts)
	if n == 0 {
		return nil, fmt.Errorf("cfg: empty program")
	}
	leader := make([]bool, n)
	leader[0] = true
	for i, in := range p.Insts {
		if in.Op.IsBranch() || in.Op == isa.OpJal {
			if in.Target < 0 || in.Target >= n {
				return nil, fmt.Errorf("cfg: instruction %d targets %d outside program", i, in.Target)
			}
			leader[in.Target] = true
			if i+1 < n {
				leader[i+1] = true
			}
		}
		if in.Op == isa.OpJr || in.Op == isa.OpHalt {
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}
	g := &Graph{Prog: p, BlockOf: make([]int, n)}
	for i := 0; i < n; i++ {
		if leader[i] {
			g.Blocks = append(g.Blocks, Block{ID: len(g.Blocks), Start: i})
		}
		g.BlockOf[i] = len(g.Blocks) - 1
	}
	for bi := range g.Blocks {
		if bi+1 < len(g.Blocks) {
			g.Blocks[bi].End = g.Blocks[bi+1].Start
		} else {
			g.Blocks[bi].End = n
		}
	}
	// Static successors.
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		last := p.Insts[b.End-1]
		add := func(target int) {
			to := g.BlockOf[target]
			for _, s := range b.Succs {
				if s == to {
					return
				}
			}
			b.Succs = append(b.Succs, to)
		}
		switch {
		case last.Op.IsBranch():
			add(last.Target)
			if b.End < n {
				add(b.End)
			}
		case last.Op == isa.OpJal:
			add(last.Target)
		case last.Op == isa.OpJr, last.Op == isa.OpHalt:
			// No static successors.
		default:
			if b.End < n {
				add(b.End)
			}
		}
	}
	return g, nil
}

// Profile holds measured execution behaviour of a program on its input data.
type Profile struct {
	Graph *Graph
	// ExecCount[i] is e_i, the number of executions of block i.
	ExecCount []int64
	// EdgeCount holds dynamic traversal counts, including edges only
	// discoverable dynamically (indirect jumps).
	EdgeCount map[Edge]int64
	// InstCount is the total number of retired instructions.
	InstCount int64
}

// NewProfile prepares an empty profile for a graph.
func NewProfile(g *Graph) *Profile {
	return &Profile{
		Graph:     g,
		ExecCount: make([]int64, len(g.Blocks)),
		EdgeCount: map[Edge]int64{},
	}
}

// Observer returns a cpu.Observer that accumulates this profile.
func (pr *Profile) Observer() cpu.Observer {
	prev := -1
	return func(d *cpu.DynInst) {
		pr.InstCount++
		b := pr.Graph.BlockOf[d.Index]
		if d.Index == pr.Graph.Blocks[b].Start {
			pr.ExecCount[b]++
			if prev >= 0 {
				pr.EdgeCount[Edge{From: prev, To: b}]++
			}
		}
		prev = b
	}
}

// IncomingEdges returns the profiled incoming edges of a block, sorted by
// source block for determinism.
func (pr *Profile) IncomingEdges(block int) []Edge {
	var in []Edge
	for e := range pr.EdgeCount {
		if e.To == block {
			in = append(in, e)
		}
	}
	sort.Slice(in, func(i, j int) bool { return in[i].From < in[j].From })
	return in
}

// ActivationProb returns p^a for an edge: the fraction of the target block's
// executions entered through this edge. The program entry block's missing
// mass corresponds to the program start.
func (pr *Profile) ActivationProb(e Edge) float64 {
	if pr.ExecCount[e.To] == 0 {
		return 0
	}
	return float64(pr.EdgeCount[e]) / float64(pr.ExecCount[e.To])
}

// Scale multiplies all counts by k, emulating a proportionally larger input
// dataset. The Section 5 statistics consume only the counts, so scaling is
// exact for workloads whose block frequencies are input-size invariant.
func (pr *Profile) Scale(k int64) {
	for i := range pr.ExecCount {
		pr.ExecCount[i] *= k
	}
	for e := range pr.EdgeCount {
		pr.EdgeCount[e] *= k
	}
	pr.InstCount *= k
}

// Clone returns a deep copy of the profile's counts (the Graph is shared, it
// is immutable after Build). Callers that need both the raw and the Scale()d
// view of one run — e.g. an unscaled Monte Carlo reference next to a scaled
// estimate — clone before scaling.
func (pr *Profile) Clone() *Profile {
	cp := &Profile{
		Graph:     pr.Graph,
		ExecCount: make([]int64, len(pr.ExecCount)),
		EdgeCount: make(map[Edge]int64, len(pr.EdgeCount)),
		InstCount: pr.InstCount,
	}
	copy(cp.ExecCount, pr.ExecCount)
	for e, n := range pr.EdgeCount {
		cp.EdgeCount[e] = n
	}
	return cp
}

// SCC computes strongly connected components over the union of static edges
// and profiled dynamic edges. Components are returned in reverse topological
// order of the condensation reversed into *topological* order (sources
// first), so systems can be solved respecting data flow. Comp[i] is the
// component index of block i.
type SCC struct {
	Comps [][]int // Comps[c] lists block IDs, topologically ordered components
	Comp  []int   // block ID -> component index
}

// ComputeSCC runs Tarjan's algorithm.
func ComputeSCC(g *Graph, pr *Profile) *SCC {
	n := len(g.Blocks)
	adj := make([][]int, n)
	seen := make([]map[int]bool, n)
	for i := range seen {
		seen[i] = map[int]bool{}
	}
	addEdge := func(from, to int) {
		if !seen[from][to] {
			seen[from][to] = true
			adj[from] = append(adj[from], to)
		}
	}
	for i := range g.Blocks {
		for _, s := range g.Blocks[i].Succs {
			addEdge(i, s)
		}
	}
	if pr != nil {
		var edges []Edge
		for e := range pr.EdgeCount {
			edges = append(edges, e)
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].From != edges[j].From {
				return edges[i].From < edges[j].From
			}
			return edges[i].To < edges[j].To
		})
		for _, e := range edges {
			addEdge(e.From, e.To)
		}
	}

	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	counter := 0

	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] < 0 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Ints(comp)
			comps = append(comps, comp)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] < 0 {
			strongconnect(v)
		}
	}
	// Tarjan emits components in reverse topological order; reverse them.
	for i, j := 0, len(comps)-1; i < j; i, j = i+1, j-1 {
		comps[i], comps[j] = comps[j], comps[i]
	}
	s := &SCC{Comps: comps, Comp: make([]int, n)}
	for c, comp := range comps {
		for _, b := range comp {
			s.Comp[b] = c
		}
	}
	return s
}
