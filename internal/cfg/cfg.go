// Package cfg builds control flow graphs over TS-V8 programs, profiles edge
// activation probabilities and basic-block execution counts from simulator
// runs, and computes strongly connected components with Tarjan's algorithm
// plus their condensation topological order — exactly the machinery Section
// 4.2 of the paper needs to set up and order its linear systems.
package cfg

import (
	"fmt"
	"sort"

	"tsperr/internal/cpu"
	"tsperr/internal/isa"
)

// Block is a basic block: instructions [Start, End) of the program.
type Block struct {
	ID    int
	Start int
	End   int
	// Succs lists statically known successor block IDs.
	Succs []int
}

// NumInsts returns the instruction count n_i of the block.
func (b *Block) NumInsts() int { return b.End - b.Start }

// Edge identifies a CFG edge by block IDs.
type Edge struct {
	From, To int
}

// Graph is a program CFG.
type Graph struct {
	Prog    *isa.Program
	Blocks  []Block
	BlockOf []int // instruction index -> block ID
}

// Build constructs the CFG. Leaders are the entry, every control-transfer
// target, and every instruction following a control transfer. Indirect jumps
// (jr) contribute no static successors; their edges appear during profiling.
func Build(p *isa.Program) (*Graph, error) {
	n := len(p.Insts)
	if n == 0 {
		return nil, fmt.Errorf("cfg: empty program")
	}
	leader := make([]bool, n)
	leader[0] = true
	for i, in := range p.Insts {
		if in.Op.IsBranch() || in.Op == isa.OpJal {
			if in.Target < 0 || in.Target >= n {
				return nil, fmt.Errorf("cfg: instruction %d targets %d outside program", i, in.Target)
			}
			leader[in.Target] = true
			if i+1 < n {
				leader[i+1] = true
			}
		}
		if in.Op == isa.OpJr || in.Op == isa.OpHalt {
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}
	g := &Graph{Prog: p, BlockOf: make([]int, n)}
	for i := 0; i < n; i++ {
		if leader[i] {
			g.Blocks = append(g.Blocks, Block{ID: len(g.Blocks), Start: i})
		}
		g.BlockOf[i] = len(g.Blocks) - 1
	}
	for bi := range g.Blocks {
		if bi+1 < len(g.Blocks) {
			g.Blocks[bi].End = g.Blocks[bi+1].Start
		} else {
			g.Blocks[bi].End = n
		}
	}
	// Static successors.
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		last := p.Insts[b.End-1]
		add := func(target int) {
			to := g.BlockOf[target]
			for _, s := range b.Succs {
				if s == to {
					return
				}
			}
			b.Succs = append(b.Succs, to)
		}
		switch {
		case last.Op.IsBranch():
			add(last.Target)
			if b.End < n {
				add(b.End)
			}
		case last.Op == isa.OpJal:
			add(last.Target)
		case last.Op == isa.OpJr, last.Op == isa.OpHalt:
			// No static successors.
		default:
			if b.End < n {
				add(b.End)
			}
		}
	}
	return g, nil
}

// Profile holds measured execution behaviour of a program on its input data.
type Profile struct {
	Graph *Graph
	// ExecCount[i] is e_i, the number of executions of block i.
	ExecCount []int64
	// EdgeCount holds dynamic traversal counts, including edges only
	// discoverable dynamically (indirect jumps). The Observer batches
	// increments in pend; read it through IncomingEdges/ActivationProb or
	// after Finish, which drains the pending deltas.
	EdgeCount map[Edge]int64
	// InstCount is the total number of retired instructions.
	InstCount int64

	// isStart[i] reports whether instruction i leads a block (a dense mirror
	// of Blocks[BlockOf[i]].Start == i, one byte load on the observer path).
	isStart []bool
	// prevIdx is the previously retired instruction's index (-1 before the
	// first retirement); block-transition edges are derived from it lazily,
	// only when a block start retires.
	prevIdx int
	// incoming caches per-block incoming-edge adjacency, built lazily by
	// IncomingEdges and dropped whenever new observations arrive.
	incoming [][]Edge
	// pendK/pendN form a small direct-mapped write-back cache of edge-count
	// deltas: the observer fires per retired instruction, and the tight loops
	// that dominate a profile traverse the same few edges over and over, so
	// almost every increment lands in a pending slot instead of hashing into
	// the map. The tag packs From<<32|To into one word so the hit check is a
	// single register compare rather than a 16-byte struct comparison.
	pendK [pendSlots]uint64
	pendN [pendSlots]int64
	// pendDirty reports whether any slot holds an undrained delta, so the
	// frequent Finish calls on an already-drained profile cost one branch
	// instead of a sweep over the slots.
	pendDirty bool
}

// pendSlots sizes the pending edge cache (4 KiB of tags and counts); loops
// of up to a few dozen blocks map their edges to distinct slots with high
// probability. A profile hotspot showed the smaller table with a weak
// (from*31+to) hash thrashing between conflicting edges and spilling into
// the map every few instructions on the larger mibench kernels.
const pendSlots = 256

// pendHash is the Fibonacci multiplier (2^64/phi) spreading packed edge tags
// across slots; the high bits of the product decorrelate adjacent block ids.
const pendHash = 0x9E3779B97F4A7C15

// NewProfile prepares an empty profile for a graph.
func NewProfile(g *Graph) *Profile {
	isStart := make([]bool, len(g.Prog.Insts))
	for i := range g.Blocks {
		isStart[g.Blocks[i].Start] = true
	}
	return &Profile{
		Graph:     g,
		ExecCount: make([]int64, len(g.Blocks)),
		EdgeCount: map[Edge]int64{},
		isStart:   isStart,
		prevIdx:   -1,
	}
}

// Finish drains pending edge-count deltas into EdgeCount. Profile readers
// call it implicitly; it only needs to be called explicitly before reading
// the EdgeCount map directly. Idempotent.
func (pr *Profile) Finish() {
	if !pr.pendDirty {
		return
	}
	for i, n := range pr.pendN {
		if n != 0 {
			k := pr.pendK[i]
			pr.EdgeCount[Edge{From: int(k >> 32), To: int(uint32(k))}] += n
			pr.pendN[i] = 0
		}
	}
	pr.pendDirty = false
}

// Observe accumulates one retired instruction. It is the hot path behind
// Observer and is deliberately tiny — a byte load, a branch, and a store — so
// it inlines into a caller's fused observer; the block and edge bookkeeping
// runs only when a block start retires. Callers of Observe (rather than the
// Observer closure) own InstCount and must set it from the run's Stats.
func (pr *Profile) Observe(d *cpu.DynInst) {
	pr.incoming = nil
	if pr.isStart[d.Index] {
		pr.observeStart(d.Index, pr.prevIdx)
	}
	pr.prevIdx = d.Index
}

// ObserveBatch accumulates a batch of retired instructions, equivalent to
// calling Observe on each in order; the per-instruction work is a byte load
// off the block-start bitmap. Like Observe, it leaves InstCount to the
// caller.
func (pr *Profile) ObserveBatch(ds []cpu.DynInst) {
	pr.incoming = nil
	isStart := pr.isStart
	prev := pr.prevIdx
	for i := range ds {
		idx := ds[i].Index
		if isStart[idx] {
			pr.observeStart(idx, prev)
		}
		prev = idx
	}
	pr.prevIdx = prev
}

// observeStart charges the block entered at instruction index idx and the
// edge it was entered through (prevIdx is the previously retired
// instruction, -1 at program start). Block indices fit in 32 bits (blocks
// are at most one per instruction), so the pending tag packs the edge
// losslessly.
func (pr *Profile) observeStart(idx, prevIdx int) {
	blockOf := pr.Graph.BlockOf
	b := blockOf[idx]
	pr.ExecCount[b]++
	if prevIdx >= 0 {
		from := blockOf[prevIdx]
		k := uint64(uint32(from))<<32 | uint64(uint32(b))
		s := int((k * pendHash) >> 56) & (pendSlots - 1)
		if pr.pendK[s] != k {
			if pr.pendN[s] != 0 {
				old := pr.pendK[s]
				pr.EdgeCount[Edge{From: int(old >> 32), To: int(uint32(old))}] += pr.pendN[s]
			}
			pr.pendK[s] = k
			pr.pendN[s] = 0
		}
		pr.pendN[s]++
		pr.pendDirty = true
	}
}

// Observer returns a cpu.Observer that accumulates this profile.
func (pr *Profile) Observer() cpu.Observer {
	return func(d *cpu.DynInst) {
		pr.InstCount++
		pr.Observe(d)
	}
}

// IncomingEdges returns the profiled incoming edges of a block, sorted by
// source block for determinism. The adjacency is materialized once per
// profile from the edge map and then served from the cache — the marginal
// solver asks for every block's incoming edges, and rescanning the whole map
// per block is quadratic in practice. Callers must not mutate the returned
// slice.
func (pr *Profile) IncomingEdges(block int) []Edge {
	pr.Finish()
	if pr.incoming == nil {
		in := make([][]Edge, len(pr.Graph.Blocks))
		for e := range pr.EdgeCount {
			if e.To >= 0 && e.To < len(in) {
				in[e.To] = append(in[e.To], e)
			}
		}
		for b := range in {
			s := in[b]
			sort.Slice(s, func(i, j int) bool { return s[i].From < s[j].From })
		}
		pr.incoming = in
	}
	if block < 0 || block >= len(pr.incoming) {
		return nil
	}
	return pr.incoming[block]
}

// ActivationProb returns p^a for an edge: the fraction of the target block's
// executions entered through this edge. The program entry block's missing
// mass corresponds to the program start.
func (pr *Profile) ActivationProb(e Edge) float64 {
	pr.Finish()
	if pr.ExecCount[e.To] == 0 {
		return 0
	}
	return float64(pr.EdgeCount[e]) / float64(pr.ExecCount[e.To])
}

// Scale multiplies all counts by k, emulating a proportionally larger input
// dataset. The Section 5 statistics consume only the counts, so scaling is
// exact for workloads whose block frequencies are input-size invariant.
func (pr *Profile) Scale(k int64) {
	pr.Finish()
	for i := range pr.ExecCount {
		pr.ExecCount[i] *= k
	}
	for e := range pr.EdgeCount {
		pr.EdgeCount[e] *= k
	}
	pr.InstCount *= k
}

// Clone returns a deep copy of the profile's counts (the Graph is shared, it
// is immutable after Build). Callers that need both the raw and the Scale()d
// view of one run — e.g. an unscaled Monte Carlo reference next to a scaled
// estimate — clone before scaling.
func (pr *Profile) Clone() *Profile {
	pr.Finish()
	cp := &Profile{
		Graph:     pr.Graph,
		ExecCount: make([]int64, len(pr.ExecCount)),
		EdgeCount: make(map[Edge]int64, len(pr.EdgeCount)),
		InstCount: pr.InstCount,
		isStart:   pr.isStart,
		prevIdx:   pr.prevIdx,
	}
	copy(cp.ExecCount, pr.ExecCount)
	for e, n := range pr.EdgeCount {
		cp.EdgeCount[e] = n
	}
	return cp
}

// SCC computes strongly connected components over the union of static edges
// and profiled dynamic edges. Components are returned in reverse topological
// order of the condensation reversed into *topological* order (sources
// first), so systems can be solved respecting data flow. Comp[i] is the
// component index of block i.
type SCC struct {
	Comps [][]int // Comps[c] lists block IDs, topologically ordered components
	Comp  []int   // block ID -> component index
}

// ComputeSCC runs Tarjan's algorithm.
func ComputeSCC(g *Graph, pr *Profile) *SCC {
	n := len(g.Blocks)
	adj := make([][]int, n)
	seen := make([]map[int]bool, n)
	for i := range seen {
		seen[i] = map[int]bool{}
	}
	addEdge := func(from, to int) {
		if !seen[from][to] {
			seen[from][to] = true
			adj[from] = append(adj[from], to)
		}
	}
	for i := range g.Blocks {
		for _, s := range g.Blocks[i].Succs {
			addEdge(i, s)
		}
	}
	if pr != nil {
		pr.Finish()
		var edges []Edge
		for e := range pr.EdgeCount {
			edges = append(edges, e)
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].From != edges[j].From {
				return edges[i].From < edges[j].From
			}
			return edges[i].To < edges[j].To
		})
		for _, e := range edges {
			addEdge(e.From, e.To)
		}
	}

	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	counter := 0

	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] < 0 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Ints(comp)
			comps = append(comps, comp)
		}
	}
	for v := 0; v < n; v++ {
		if index[v] < 0 {
			strongconnect(v)
		}
	}
	// Tarjan emits components in reverse topological order; reverse them.
	for i, j := 0, len(comps)-1; i < j; i, j = i+1, j-1 {
		comps[i], comps[j] = comps[j], comps[i]
	}
	s := &SCC{Comps: comps, Comp: make([]int, n)}
	for c, comp := range comps {
		for _, b := range comp {
			s.Comp[b] = c
		}
	}
	return s
}
