package cfg

import (
	"math"
	"testing"

	"tsperr/internal/cpu"
	"tsperr/internal/isa"
)

const loopSrc = `
	li r1, 3        # 0: block 0
	li r2, 0        # 1
loop:
	add r2, r2, r1  # 2: block 1
	addi r1, r1, -1 # 3
	bne r1, r0, loop# 4
	halt            # 5: block 2
`

func buildLoop(t *testing.T) (*isa.Program, *Graph) {
	t.Helper()
	p, err := isa.Assemble("loop", loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, g
}

func TestBuildBlocks(t *testing.T) {
	_, g := buildLoop(t)
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(g.Blocks))
	}
	if g.Blocks[0].Start != 0 || g.Blocks[0].End != 2 {
		t.Errorf("block 0 = [%d,%d)", g.Blocks[0].Start, g.Blocks[0].End)
	}
	if g.Blocks[1].Start != 2 || g.Blocks[1].End != 5 {
		t.Errorf("block 1 = [%d,%d)", g.Blocks[1].Start, g.Blocks[1].End)
	}
	if g.Blocks[1].NumInsts() != 3 {
		t.Error("n_i of loop block should be 3")
	}
	// Successors: block0 -> block1; block1 -> {block1, block2}.
	if len(g.Blocks[0].Succs) != 1 || g.Blocks[0].Succs[0] != 1 {
		t.Errorf("block0 succs = %v", g.Blocks[0].Succs)
	}
	got := map[int]bool{}
	for _, s := range g.Blocks[1].Succs {
		got[s] = true
	}
	if !got[1] || !got[2] {
		t.Errorf("block1 succs = %v", g.Blocks[1].Succs)
	}
	for i := range g.BlockOf {
		want := 0
		if i >= 2 {
			want = 1
		}
		if i >= 5 {
			want = 2
		}
		if g.BlockOf[i] != want {
			t.Errorf("BlockOf[%d] = %d, want %d", i, g.BlockOf[i], want)
		}
	}
}

func TestProfileCountsAndActivation(t *testing.T) {
	p, g := buildLoop(t)
	pr := NewProfile(g)
	c, err := cpu.New(p, cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(pr.Observer()); err != nil {
		t.Fatal(err)
	}
	if pr.ExecCount[0] != 1 || pr.ExecCount[1] != 3 || pr.ExecCount[2] != 1 {
		t.Errorf("exec counts = %v", pr.ExecCount)
	}
	if pr.InstCount != 2+3*3+1 {
		t.Errorf("inst count = %d", pr.InstCount)
	}
	// Loop block entered once from block 0 and twice from itself.
	if got := pr.ActivationProb(Edge{0, 1}); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("p^a(0->1) = %v", got)
	}
	if got := pr.ActivationProb(Edge{1, 1}); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("p^a(1->1) = %v", got)
	}
	in := pr.IncomingEdges(1)
	if len(in) != 2 || in[0].From != 0 || in[1].From != 1 {
		t.Errorf("incoming edges = %v", in)
	}
	// Activation probabilities of incoming edges sum to 1 for entered blocks.
	var sum float64
	for _, e := range in {
		sum += pr.ActivationProb(e)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("incoming activation sums to %v", sum)
	}
}

func TestProfileScale(t *testing.T) {
	p, g := buildLoop(t)
	pr := NewProfile(g)
	c, _ := cpu.New(p, cpu.DefaultConfig())
	if _, err := c.Run(pr.Observer()); err != nil {
		t.Fatal(err)
	}
	before := pr.ActivationProb(Edge{1, 1})
	pr.Scale(1000)
	if pr.ExecCount[1] != 3000 || pr.InstCount != 12000 {
		t.Errorf("scaled counts = %v / %d", pr.ExecCount, pr.InstCount)
	}
	if math.Abs(pr.ActivationProb(Edge{1, 1})-before) > 1e-12 {
		t.Error("scaling must preserve activation probabilities")
	}
}

func TestSCCLoopDetected(t *testing.T) {
	p, g := buildLoop(t)
	pr := NewProfile(g)
	c, _ := cpu.New(p, cpu.DefaultConfig())
	if _, err := c.Run(pr.Observer()); err != nil {
		t.Fatal(err)
	}
	s := ComputeSCC(g, pr)
	// Components: {0}, {1}, {2} with 1 self-looping; topological order
	// must put 0 before 1 before 2.
	if len(s.Comps) != 3 {
		t.Fatalf("components = %v", s.Comps)
	}
	if s.Comp[0] > s.Comp[1] || s.Comp[1] > s.Comp[2] {
		t.Errorf("condensation order wrong: %v", s.Comp)
	}
}

func TestSCCMultiBlockCycle(t *testing.T) {
	src := `
	start:
		beq r0, r0, middle
	other:
		beq r1, r0, start   # back edge creating a 3-block cycle
		halt
	middle:
		beq r0, r1, other
		halt
	`
	p, err := isa.Assemble("cyc", src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeSCC(g, nil)
	// start, other, middle must share a component.
	c0 := s.Comp[g.BlockOf[0]]
	if s.Comp[g.BlockOf[1]] != c0 || s.Comp[g.BlockOf[3]] != c0 {
		t.Errorf("cycle blocks not in one SCC: %v", s.Comp)
	}
}

func TestIndirectJumpEdgesFromProfile(t *testing.T) {
	src := `
		jal r31, sub
		halt
	sub:
		jr r31
	`
	p, _ := isa.Assemble("ind", src)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	// jr block has no static successors.
	jrBlock := g.BlockOf[2]
	if len(g.Blocks[jrBlock].Succs) != 0 {
		t.Errorf("jr block static succs = %v", g.Blocks[jrBlock].Succs)
	}
	pr := NewProfile(g)
	c, _ := cpu.New(p, cpu.DefaultConfig())
	if _, err := c.Run(pr.Observer()); err != nil {
		t.Fatal(err)
	}
	// Profile must discover the return edge jr -> halt block.
	pr.Finish()
	if pr.EdgeCount[Edge{jrBlock, g.BlockOf[1]}] != 1 {
		t.Errorf("return edge not profiled: %v", pr.EdgeCount)
	}
}

func TestBuildRejectsEmpty(t *testing.T) {
	if _, err := Build(&isa.Program{Name: "empty"}); err == nil {
		t.Error("empty program should fail")
	}
}
