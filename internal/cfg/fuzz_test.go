package cfg

import (
	"testing"

	"tsperr/internal/cpu"
	"tsperr/internal/isa"
	"tsperr/internal/numeric"
)

// randomBranchy builds a random but terminating program with forward and
// backward branches guarded by a countdown register so loops are finite.
func randomBranchy(rng *numeric.RNG, n int) *isa.Program {
	insts := []isa.Inst{
		{Op: isa.OpAddi, Rd: 30, Rs1: 0, Imm: 40}, // loop fuel
	}
	for i := 1; i <= n; i++ {
		switch rng.Intn(5) {
		case 0: // backward branch guarded by fuel
			insts = append(insts,
				isa.Inst{Op: isa.OpAddi, Rd: 30, Rs1: 30, Imm: -1},
				// Skip the backward jump once fuel is exhausted (0 >= fuel).
				isa.Inst{Op: isa.OpBge, Rs1: 0, Rs2: 30, Target: len(insts) + 3},
				// Never re-enter instruction 0 (the fuel initializer).
				isa.Inst{Op: isa.OpBne, Rs1: 30, Rs2: 0, Target: 1 + rng.Intn(len(insts))},
			)
		case 1: // forward branch
			insts = append(insts, isa.Inst{
				Op: isa.OpBlt, Rs1: uint8(rng.Intn(8)), Rs2: uint8(rng.Intn(8)),
				Target: len(insts) + 1 + rng.Intn(3),
			})
		default:
			insts = append(insts, isa.Inst{
				Op: isa.OpAdd, Rd: uint8(1 + rng.Intn(8)),
				Rs1: uint8(rng.Intn(8)), Rs2: uint8(rng.Intn(8)),
			})
		}
	}
	// Clamp forward targets into range, then halt.
	insts = append(insts, isa.Inst{Op: isa.OpHalt})
	for i := range insts {
		if insts[i].Op.IsBranch() && insts[i].Target >= len(insts) {
			insts[i].Target = len(insts) - 1
		}
	}
	return &isa.Program{Name: "branchy", Insts: insts}
}

// TestRandomCFGInvariants checks structural invariants over random programs:
// block partitioning covers every instruction exactly once, BlockOf is
// consistent, successors are in range, and the SCC condensation respects
// edge direction.
func TestRandomCFGInvariants(t *testing.T) {
	rng := numeric.NewRNG(31)
	for trial := 0; trial < 200; trial++ {
		p := randomBranchy(rng, 2+rng.Intn(40))
		g, err := Build(p)
		if err != nil {
			t.Fatal(err)
		}
		// Partition: blocks tile [0, n) without gaps or overlaps.
		at := 0
		for bi, b := range g.Blocks {
			if b.Start != at {
				t.Fatalf("trial %d: block %d starts at %d, expected %d", trial, bi, b.Start, at)
			}
			if b.End <= b.Start {
				t.Fatalf("trial %d: empty block %d", trial, bi)
			}
			for i := b.Start; i < b.End; i++ {
				if g.BlockOf[i] != bi {
					t.Fatalf("trial %d: BlockOf inconsistent at %d", trial, i)
				}
			}
			for _, s := range b.Succs {
				if s < 0 || s >= len(g.Blocks) {
					t.Fatalf("trial %d: successor out of range", trial)
				}
			}
			at = b.End
		}
		if at != len(p.Insts) {
			t.Fatalf("trial %d: blocks cover %d of %d instructions", trial, at, len(p.Insts))
		}
		// Run it and profile; SCC condensation order must respect profiled
		// edges (from-component <= to-component).
		c, err := cpu.New(p, cpu.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		pr := NewProfile(g)
		if _, err := c.Run(pr.Observer()); err != nil {
			t.Fatal(err)
		}
		scc := ComputeSCC(g, pr)
		for e := range pr.EdgeCount {
			if scc.Comp[e.From] > scc.Comp[e.To] {
				t.Fatalf("trial %d: condensation order violated on %v", trial, e)
			}
		}
		// Activation probabilities of incoming edges never exceed 1.
		for bi := range g.Blocks {
			var sum float64
			for _, e := range pr.IncomingEdges(bi) {
				sum += pr.ActivationProb(e)
			}
			if sum > 1+1e-9 {
				t.Fatalf("trial %d: block %d incoming mass %v", trial, bi, sum)
			}
		}
	}
}
