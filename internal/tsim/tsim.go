// Package tsim implements the gate-level timing-simulation style of DTA the
// paper's Related Work discusses (Constantin et al., DATE 2015; Greskamp et
// al., HPCA 2009): propagate scalar transition times through the activated
// gates of each cycle and flag a timing error when the latest transition at
// an endpoint violates setup. It is deterministic by construction — the
// limitation the paper calls out: because the simulator performs the timing
// analysis with fixed delays, it cannot express the nondeterministic timing
// that process variation induces, so near-critical cycles get a hard yes/no
// instead of a probability. The tests and benches contrast its verdicts with
// the SSTA-based analyzer's probabilities.
package tsim

import (
	"tsperr/internal/activity"
	"tsperr/internal/cell"
	"tsperr/internal/netlist"
	"tsperr/internal/sta"
)

// Simulator propagates nominal transition times over activated subgraphs.
type Simulator struct {
	Engine *sta.Engine
	topo   []netlist.GateID
}

// New builds a timing simulator sharing an engine's delays and clock.
func New(e *sta.Engine) (*Simulator, error) {
	topo, err := e.N.TopoOrder()
	if err != nil {
		return nil, err
	}
	return &Simulator{Engine: e, topo: topo}, nil
}

// CycleResult reports one cycle's timing outcome.
type CycleResult struct {
	// Latest is the latest endpoint transition time in ps (0 if none).
	Latest float64
	// Slack is period - setup - Latest (meaningless when no transition).
	Slack float64
	// Violation reports a deterministic setup violation.
	Violation bool
	// Active reports whether any endpoint captured a transition.
	Active bool
}

// Cycle computes the timing of cycle t from the activation trace.
func (s *Simulator) Cycle(eps []netlist.GateID, t int, tr *activity.Trace) CycleResult {
	n := s.Engine.N
	gates := n.Gates()
	tt := make([]float64, len(gates))
	valid := make([]bool, len(gates))
	for _, id := range s.topo {
		if !tr.Activated(t, id) {
			continue
		}
		g := &gates[id]
		if g.Kind.IsSource() {
			tt[id] = s.Engine.GateDelay(id).Mean
			valid[id] = true
			continue
		}
		have := false
		latest := 0.0
		for _, f := range g.Fanin {
			if valid[f] && tt[f] > latest {
				latest = tt[f]
				have = true
			}
			if valid[f] {
				have = true
			}
		}
		if !have {
			continue
		}
		tt[id] = latest + s.Engine.GateDelay(id).Mean
		valid[id] = true
	}
	var res CycleResult
	for _, ep := range eps {
		if gates[ep].Kind != cell.DFF {
			continue
		}
		d := gates[ep].Fanin[0]
		if !valid[d] {
			continue
		}
		res.Active = true
		if tt[d] > res.Latest {
			res.Latest = tt[d]
		}
	}
	if res.Active {
		res.Slack = s.Engine.ClockPeriod - cell.Setup - res.Latest
		res.Violation = res.Slack < 0
	}
	return res
}

// CountViolations runs the whole trace and counts deterministic violations —
// what an error counter attached to a timing simulation would report.
func (s *Simulator) CountViolations(eps []netlist.GateID, tr *activity.Trace) int {
	n := 0
	for t := 0; t < tr.Cycles(); t++ {
		if s.Cycle(eps, t, tr).Violation {
			n++
		}
	}
	return n
}
