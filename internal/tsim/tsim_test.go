package tsim

import (
	"math"
	"testing"

	"tsperr/internal/activity"
	"tsperr/internal/cell"
	"tsperr/internal/dta"
	"tsperr/internal/gdta"
	"tsperr/internal/gen"
	"tsperr/internal/netlist"
	"tsperr/internal/sta"
	"tsperr/internal/variation"
)

func setWord(in map[netlist.GateID]bool, gates [32]netlist.GateID, w uint32) {
	for i := 0; i < 32; i++ {
		in[gates[i]] = (w>>uint(i))&1 == 1
	}
}

func adderFixture(t *testing.T, period float64) (*Simulator, *gdta.Analyzer, *dta.Analyzer, *activity.Trace, *gen.AdderNet) {
	t.Helper()
	ad := gen.Adder()
	m, err := variation.NewModel(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sta.NewEngine(ad.N, m, period, cell.SigmaRel, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	ga, err := gdta.New(e)
	if err != nil {
		t.Fatal(err)
	}
	pa := dta.New(e, 8)
	sim, _ := activity.NewSimulator(ad.N)
	tr := &activity.Trace{NumGates: ad.N.NumGates()}
	for _, op := range [][2]uint32{{0, 0}, {0xFFFFFFFF, 1}, {3, 1}, {0x0F0F, 0xF0F1}} {
		in := map[netlist.GateID]bool{}
		setWord(in, ad.A, op[0])
		setWord(in, ad.B, op[1])
		in[ad.Cin] = false
		tr.Sets = append(tr.Sets, sim.Cycle(in))
	}
	return ts, ga, pa, tr, ad
}

func TestTimingSimMatchesGraphDTANominal(t *testing.T) {
	ts, ga, _, tr, ad := adderFixture(t, 2500)
	eps := ad.N.Endpoints(0)
	for cyc := 1; cyc < tr.Cycles(); cyc++ {
		res := ts.Cycle(eps, cyc, tr)
		form, ok := ga.StageDTS(eps, cyc, tr)
		if res.Active != ok {
			t.Fatalf("cycle %d: activity disagreement", cyc)
		}
		if !ok {
			continue
		}
		if math.Abs(res.Slack-form.Mean) > 1e-6 {
			t.Errorf("cycle %d: tsim slack %v vs graph-DTA mean %v", cyc, res.Slack, form.Mean)
		}
	}
}

func TestDeterministicVerdictHidesProbability(t *testing.T) {
	// Pick a period slightly above the full-chain nominal delay: the timing
	// simulation says "no violation", while SSTA assigns a substantial
	// failure probability — the paper's argument for statistical DTA.
	ts, _, pa, tr, ad := adderFixture(t, 2500)
	eps := ad.N.Endpoints(0)
	nominal := ts.Cycle(eps, 1, tr) // full carry chain cycle
	if !nominal.Active {
		t.Fatal("expected activity")
	}
	// Retune the clock to sit 1 sigma above the nominal critical delay.
	form, ok := pa.StageDTS(eps, 1, tr)
	if !ok {
		t.Fatal("expected DTS")
	}
	criticalDelay := 2500 - form.Mean // activated path delay incl. setup
	period := criticalDelay + form.Std()
	m, _ := variation.NewModel(2, 0.5)
	e2, err := sta.NewEngine(ad.N, m, period, cell.SigmaRel, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts2, _ := New(e2)
	pa2 := dta.New(e2, 8)
	res := ts2.Cycle(eps, 1, tr)
	if res.Violation {
		t.Fatalf("deterministic sim should pass at +1 sigma: slack %v", res.Slack)
	}
	form2, _ := pa2.StageDTS(eps, 1, tr)
	p := dta.ErrorProbability(form2)
	if p < 0.05 {
		t.Errorf("SSTA should assign a visible failure probability, got %v", p)
	}
}

func TestCountViolations(t *testing.T) {
	// At an aggressive period the full-chain cycle must violate.
	ts, _, _, tr, ad := adderFixture(t, 1500)
	eps := ad.N.Endpoints(0)
	n := ts.CountViolations(eps, tr)
	if n == 0 {
		t.Error("expected at least one deterministic violation at 1500 ps")
	}
	// At a generous period, none.
	ts2, _, _, tr2, ad2 := adderFixture(t, 4000)
	if m := ts2.CountViolations(ad2.N.Endpoints(0), tr2); m != 0 {
		t.Errorf("expected no violations at 4000 ps, got %d", m)
	}
}

func TestQuietCycleInactive(t *testing.T) {
	ts, _, _, tr, ad := adderFixture(t, 2500)
	// Append a quiet cycle by reusing the trace beyond its end.
	res := ts.Cycle(ad.N.Endpoints(0), tr.Cycles()+5, tr)
	if res.Active || res.Violation {
		t.Error("out-of-trace cycle must be inactive")
	}
}
