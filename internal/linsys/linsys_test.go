package linsys

import (
	"math"
	"testing"
	"testing/quick"

	"tsperr/internal/numeric"
)

func TestSolveKnownSystem(t *testing.T) {
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := [][]float64{
		{0, 1},
		{1, 0},
	}
	x, err := Solve(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 7 || x[1] != 3 {
		t.Errorf("x = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]float64{
		{1, 2},
		{2, 4},
	}
	if _, err := Solve(a, []float64{1, 2}); err != ErrSingular {
		t.Errorf("expected ErrSingular, got %v", err)
	}
}

func TestSolveShapeErrors(t *testing.T) {
	if _, err := Solve(nil, nil); err == nil {
		t.Error("empty system should fail")
	}
	if _, err := Solve([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("non-square should fail")
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := [][]float64{{2, 0}, {0, 4}}
	b := []float64{2, 8}
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0][0] != 2 || a[1][1] != 4 || b[0] != 2 || b[1] != 8 {
		t.Error("inputs were mutated")
	}
}

func TestSolveRandomRoundTripProperty(t *testing.T) {
	rng := numeric.NewRNG(77)
	f := func(seed uint32) bool {
		n := 1 + int(seed%6)
		a := make([][]float64, n)
		x := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.Float64() - 0.5
			}
			a[i][i] += float64(n) // diagonally dominant => well conditioned
			x[i] = rng.Float64()*10 - 5
		}
		b := make([]float64, n)
		for i := range b {
			for j := range x {
				b[i] += a[i][j] * x[j]
			}
		}
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
