// Package linsys provides the dense linear-algebra kernel used to solve the
// per-SCC systems of Section 4.2, where edge activation probabilities form
// the coefficient matrix and instruction error probabilities are the
// unknowns.
package linsys

import (
	"errors"
	"math"
)

// ErrSingular reports a (numerically) singular coefficient matrix.
var ErrSingular = errors.New("linsys: singular matrix")

// Solve returns x such that A x = b using Gaussian elimination with partial
// pivoting. A and b are not modified. A must be square and len(b) == len(A).
func Solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, errors.New("linsys: empty system")
	}
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, errors.New("linsys: non-square matrix")
		}
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv := 1 / m[col][col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = m[i][n] / m[i][i]
	}
	return x, nil
}
