package cliutil

import (
	"context"
	"errors"
	"flag"
	"syscall"
	"testing"
	"time"
)

func TestContextTimeout(t *testing.T) {
	ctx, cancel := Context(20 * time.Millisecond)
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("positive timeout should set a deadline")
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context never expired")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", ctx.Err())
	}
}

func TestContextNoTimeout(t *testing.T) {
	ctx, cancel := Context(0)
	if _, ok := ctx.Deadline(); ok {
		t.Error("zero timeout should not set a deadline")
	}
	select {
	case <-ctx.Done():
		t.Fatal("context done before cancel")
	default:
	}
	cancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not release the context")
	}
	// cancel must be safe to call again (it is routinely deferred).
	cancel()
}

func TestContextCancelledBySignal(t *testing.T) {
	ctx, cancel := Context(0)
	defer cancel()
	// The context is registered with NotifyContext, so the signal is
	// intercepted rather than killing the test process.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGINT did not cancel the context")
	}
}

func TestModelCacheFlags(t *testing.T) {
	// The flags register on the default set (that is the package contract —
	// every cmd/ tool shares flag.CommandLine), so this test reads defaults
	// and then flips values via flag.Set rather than re-parsing.
	read := ModelCacheFlags()
	enabled, dir := read()
	if !enabled || dir != "" {
		t.Fatalf("defaults = (%v, %q), want (true, \"\")", enabled, dir)
	}
	if err := flag.Set("model-cache", "false"); err != nil {
		t.Fatal(err)
	}
	if err := flag.Set("model-cache-dir", "/tmp/mc"); err != nil {
		t.Fatal(err)
	}
	enabled, dir = read()
	if enabled || dir != "/tmp/mc" {
		t.Errorf("after Set = (%v, %q), want (false, \"/tmp/mc\")", enabled, dir)
	}
}

func TestExitCodesAreDistinct(t *testing.T) {
	// Scripts and CI distinguish usage errors from analysis failures; the
	// constants are wire protocol, not implementation detail.
	if ExitFailure != 1 || ExitUsage != 2 {
		t.Fatalf("exit codes moved: failure=%d usage=%d", ExitFailure, ExitUsage)
	}
}
