// Package cliutil holds the run-layer plumbing shared by the cmd/ tools:
// a root context wired to the -timeout flag and to SIGINT/SIGTERM, and the
// distinguished exit codes of the estimation CLIs.
package cliutil

import (
	"context"
	"flag"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Exit codes shared by the cmd/ tools: usage errors are distinguishable
// from analysis failures in scripts and CI.
const (
	// ExitFailure is an analysis (pipeline) failure.
	ExitFailure = 1
	// ExitUsage is a command-line usage error.
	ExitUsage = 2
)

// ModelCacheFlags registers the shared -model-cache and -model-cache-dir
// flags on the default flag set and returns a function to read them after
// flag.Parse. The cache defaults to on for the CLI tools (the library keeps
// it off), so repeated invocations skip the once-per-design calibration and
// training; -model-cache=false forces a cold build.
func ModelCacheFlags() func() (enabled bool, dir string) {
	enabled := flag.Bool("model-cache", true,
		"reuse calibrated+trained models from the on-disk cache")
	dir := flag.String("model-cache-dir", "",
		"model cache directory (default: the user cache dir)")
	return func() (bool, string) { return *enabled, *dir }
}

// Context returns the root context of a CLI invocation: cancelled on
// SIGINT/SIGTERM so a Ctrl-C aborts in-flight scenario simulations cleanly,
// and bounded by timeout when positive (the -timeout flag). The returned
// cancel must be deferred.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() {
		cancel()
		stop()
	}
}
