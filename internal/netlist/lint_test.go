package netlist

import (
	"math"
	"strings"
	"testing"

	"tsperr/internal/cell"
)

// smallNet builds a minimal well-formed two-stage netlist:
// stage 0: inputs a,b -> AND -> DFF q0; stage 1: INV of q0 -> DFF q1.
func smallNet(t *testing.T) *Netlist {
	t.Helper()
	n := New("small", 2)
	a := n.Add(cell.INPUT, "a", 0)
	b := n.Add(cell.INPUT, "b", 0)
	and := n.Add(cell.AND2, "and", 0, a, b)
	q0 := n.Add(cell.DFF, "q0", 0, and)
	inv := n.Add(cell.INV, "inv", 1, q0)
	n.Add(cell.DFF, "q1", 1, inv)
	if err := n.Validate(); err != nil {
		t.Fatalf("smallNet invalid: %v", err)
	}
	return n
}

func findingsFor(fs []Finding, rule string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

func TestLintCleanNetlist(t *testing.T) {
	fs := smallNet(t).Lint(StdLibrary{})
	if len(fs) != 0 {
		t.Fatalf("clean netlist produced findings: %v", fs)
	}
}

func TestLintDanglingGate(t *testing.T) {
	n := smallNet(t)
	id := n.Add(cell.INV, "orphan", 1, 0)
	fs := findingsFor(n.Lint(StdLibrary{}), "dangling-gate")
	if len(fs) != 1 || fs[0].Gate != "orphan" || fs[0].Severity != Warning {
		t.Fatalf("dangling gate findings = %v, want one warning on orphan", fs)
	}
	n.MarkUnused(id)
	if fs := n.Lint(StdLibrary{}); len(fs) != 0 {
		t.Fatalf("MarkUnused should silence the dangling warning, got %v", fs)
	}
}

func TestLintFaninArity(t *testing.T) {
	n := smallNet(t)
	and := n.Gate(2)
	and.Fanin = and.Fanin[:1] // AND2 with one input
	fs := findingsFor(n.Lint(StdLibrary{}), "fanin-arity")
	if len(fs) != 1 || fs[0].Gate != "and" || fs[0].Severity != Error {
		t.Fatalf("arity findings = %v, want one error on and", fs)
	}

	n2 := smallNet(t)
	n2.Gate(2).Fanin[0] = 99 // dangling reference
	fs = findingsFor(n2.Lint(StdLibrary{}), "fanin-arity")
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "out of range") {
		t.Fatalf("out-of-range findings = %v, want one", fs)
	}
}

func TestLintStageOrder(t *testing.T) {
	n := smallNet(t)
	n.Gate(2).Stage = 1 // the AND now claims stage 1 but feeds the stage-0 DFF
	fs := findingsFor(n.Lint(StdLibrary{}), "stage-order")
	if len(fs) != 1 || fs[0].Gate != "q0" || !strings.Contains(fs[0].Msg, "later stage") {
		t.Fatalf("stage-order findings = %v, want one back-edge error on q0", fs)
	}

	n2 := smallNet(t)
	n2.Gate(4).Stage = 7
	fs = findingsFor(n2.Lint(StdLibrary{}), "stage-order")
	// Gate 4 is out of range, and q1 now consumes it from a "later" stage.
	if len(fs) != 2 || !strings.Contains(fs[0].Msg, "outside [0,2)") {
		t.Fatalf("stage-range findings = %v, want range + back-edge errors", fs)
	}
}

// zeroDelayLib breaks the AND2 delay annotation on purpose.
type zeroDelayLib struct{ StdLibrary }

func (zeroDelayLib) Delay(k cell.Kind) float64 {
	if k == cell.AND2 {
		return 0
	}
	return k.Delay()
}

func TestLintDelayAnnotation(t *testing.T) {
	n := smallNet(t)
	n.Gate(4).Kind = cell.Kind(200)
	fs := findingsFor(n.Lint(StdLibrary{}), "delay-annotation")
	if len(fs) != 1 || fs[0].Gate != "inv" || !strings.Contains(fs[0].Msg, "not in the library") {
		t.Fatalf("unknown-kind findings = %v, want one on inv", fs)
	}

	fs = findingsFor(smallNet(t).Lint(zeroDelayLib{}), "delay-annotation")
	if len(fs) != 1 || fs[0].Gate != "and" || !strings.Contains(fs[0].Msg, "non-positive") {
		t.Fatalf("zero-delay findings = %v, want one on and", fs)
	}
}

func TestLintPlacement(t *testing.T) {
	n := smallNet(t)
	n.SetPlacement(2, 1.5, 0.5)
	n.SetPlacement(3, math.NaN(), 0.5)
	fs := findingsFor(n.Lint(StdLibrary{}), "placement")
	if len(fs) != 2 || fs[0].Gate != "and" || fs[1].Gate != "q0" {
		t.Fatalf("placement findings = %v, want errors on and, q0", fs)
	}
}

func TestLintDupName(t *testing.T) {
	n := smallNet(t)
	n.Gate(4).Name = "and"
	fs := findingsFor(n.Lint(StdLibrary{}), "dup-name")
	if len(fs) != 1 || fs[0].Gate != "and" || fs[0].Severity != Error {
		t.Fatalf("dup-name findings = %v, want one error", fs)
	}
}

// TestLintSurvivesCycle checks that Lint keeps working on a netlist whose
// cycle makes Validate fail — and that the Validate error now names the
// stuck gates with kind and stage.
func TestLintSurvivesCycle(t *testing.T) {
	n := smallNet(t)
	i1 := n.Add(cell.INV, "loop1", 1, 0)
	i2 := n.Add(cell.INV, "loop2", 1, i1)
	q := n.Add(cell.DFF, "loopq", 1, i2)
	_ = q
	n.Gate(i1).Fanin[0] = i2 // close the combinational loop

	err := n.Validate()
	if err == nil {
		t.Fatal("Validate accepted a cyclic netlist")
	}
	for _, want := range []string{"loop1", "loop2", "INV", "stage 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("cycle error %q does not mention %q", err, want)
		}
	}

	fs := n.Lint(StdLibrary{})
	if len(fs) != 0 {
		// The cycle itself is Validate's job; Lint must simply not panic
		// and not misreport the cyclic gates under unrelated rules.
		t.Fatalf("Lint on cyclic netlist reported %v, want none", fs)
	}
}

func TestHasErrors(t *testing.T) {
	if HasErrors([]Finding{{Severity: Warning}}) {
		t.Fatal("warning counted as error")
	}
	if !HasErrors([]Finding{{Severity: Warning}, {Severity: Error}}) {
		t.Fatal("error not detected")
	}
}
