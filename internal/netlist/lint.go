package netlist

import (
	"fmt"
	"math"
	"sort"

	"tsperr/internal/cell"
)

// Severity classifies a structural finding. Errors indicate a netlist the
// estimation pipeline would mis-analyze (or panic on); warnings indicate
// likely generator bugs that do not by themselves corrupt timing analysis.
type Severity int

const (
	// Warning marks suspicious-but-survivable structure (dangling outputs).
	Warning Severity = iota
	// Error marks structure that breaks the analysis contract.
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Finding is one structural-lint diagnostic, tied to a gate where one is
// responsible.
type Finding struct {
	Severity Severity
	// Rule is the stable machine-readable rule name (dangling-gate,
	// fanin-arity, stage-order, delay-annotation, placement, dup-name).
	Rule string
	// Gate names the offending gate ("" for netlist-level findings).
	Gate string
	Msg  string
}

func (f Finding) String() string {
	if f.Gate == "" {
		return fmt.Sprintf("%s: [%s] %s", f.Severity, f.Rule, f.Msg)
	}
	return fmt.Sprintf("%s: [%s] gate %q: %s", f.Severity, f.Rule, f.Gate, f.Msg)
}

// HasErrors reports whether any finding is Error-severity.
func HasErrors(fs []Finding) bool {
	for _, f := range fs {
		if f.Severity == Error {
			return true
		}
	}
	return false
}

// Library abstracts the cell library the linter checks gates against, so
// tests can lint with deliberately broken libraries.
type Library interface {
	// Known reports whether the kind is a member of the library.
	Known(k cell.Kind) bool
	// NumInputs is the required fan-in arity of the kind.
	NumInputs(k cell.Kind) int
	// Delay is the nominal propagation delay of the kind in picoseconds.
	Delay(k cell.Kind) float64
}

// StdLibrary adapts package cell's standard library to the Library
// interface.
type StdLibrary struct{}

func (StdLibrary) Known(k cell.Kind) bool    { return k.Known() }
func (StdLibrary) NumInputs(k cell.Kind) int { return k.NumInputs() }
func (StdLibrary) Delay(k cell.Kind) float64 { return k.Delay() }

// Lint runs the structural rule set over the netlist and returns the
// findings, errors before warnings and in gate order within each. Unlike
// Validate, which stops at the first fatal problem, Lint reports every
// violation of every rule so a broken generator is diagnosed in one run:
//
//	dangling-gate    warning  non-endpoint gate drives nothing and is not
//	                          declared Unused
//	fanin-arity      error    fan-in count differs from the library arity,
//	                          or a fan-in ID is out of range
//	stage-order      error    a gate consumes a signal from a later stage,
//	                          or sits outside [0, Stages)
//	delay-annotation error    unknown cell kind, or a combinational cell
//	                          with a non-positive library delay
//	placement        error    die coordinates NaN or outside [0, 1)
//	dup-name         error    two gates share a name
//
// Lint never builds the topological order, so it works (and stays useful)
// on netlists whose cycles make Validate fail.
func (n *Netlist) Lint(lib Library) []Finding {
	var fs []Finding
	m := len(n.gates)

	// Fanout counts, computed locally: build() panics on cyclic netlists,
	// and the linter must keep working on exactly those.
	drives := make([]int, m)
	for i := range n.gates {
		for _, f := range n.gates[i].Fanin {
			if int(f) >= 0 && int(f) < m {
				drives[f]++
			}
		}
	}

	firstByName := map[string]GateID{}
	for i := range n.gates {
		g := &n.gates[i]
		report := func(sev Severity, rule, format string, args ...any) {
			fs = append(fs, Finding{Severity: sev, Rule: rule, Gate: g.Name,
				Msg: fmt.Sprintf(format, args...)})
		}

		known := lib.Known(g.Kind)
		if !known {
			report(Error, "delay-annotation", "cell kind %v is not in the library; no delay model exists for it", g.Kind)
		} else if g.Kind.IsCombinational() && lib.Delay(g.Kind) <= 0 {
			report(Error, "delay-annotation", "combinational cell %v has non-positive library delay %gps", g.Kind, lib.Delay(g.Kind))
		}

		arityOK := true
		for _, f := range g.Fanin {
			if int(f) < 0 || int(f) >= m {
				report(Error, "fanin-arity", "fanin ID %d out of range [0,%d)", f, m)
				arityOK = false
			}
		}
		if known {
			if want := lib.NumInputs(g.Kind); len(g.Fanin) != want {
				report(Error, "fanin-arity", "%v has %d fanins, library requires %d", g.Kind, len(g.Fanin), want)
				arityOK = false
			}
		}

		if g.Stage < 0 || g.Stage >= n.Stages {
			report(Error, "stage-order", "stage %d outside [0,%d)", g.Stage, n.Stages)
		}
		if arityOK {
			for _, f := range g.Fanin {
				if fg := &n.gates[f]; fg.Stage > g.Stage {
					report(Error, "stage-order", "consumes %q from later stage %d while in stage %d; signals must flow forward", fg.Name, fg.Stage, g.Stage)
				}
			}
		}

		for _, c := range [2]float64{g.X, g.Y} {
			if math.IsNaN(c) || c < 0 || c >= 1 {
				report(Error, "placement", "die coordinates (%g,%g) outside [0,1)x[0,1); the spatial variation model cannot place it", g.X, g.Y)
				break
			}
		}

		if drives[g.ID] == 0 && !g.IsEndpoint() && !g.Unused {
			report(Warning, "dangling-gate", "%v output drives nothing and is not declared Unused; likely a generator bug", g.Kind)
		}

		if first, dup := firstByName[g.Name]; dup {
			report(Error, "dup-name", "name already used by gate %d; diagnostics and endpoint reports would be ambiguous", first)
		} else {
			firstByName[g.Name] = g.ID
		}
	}

	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Severity != fs[j].Severity {
			return fs[i].Severity > fs[j].Severity // errors first
		}
		return false
	})
	return fs
}
