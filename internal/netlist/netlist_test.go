package netlist

import (
	"strings"
	"testing"

	"tsperr/internal/cell"
)

// buildToy returns a 2-stage netlist:
// stage 0: inputs a,b -> xor (sum) -> ff0 (data), and -> ff1 (control)
// stage 1: ff0,ff1 -> or -> ff2
func buildToy() (*Netlist, map[string]GateID) {
	n := New("toy", 2)
	ids := map[string]GateID{}
	ids["a"] = n.Add(cell.INPUT, "a", 0)
	ids["b"] = n.Add(cell.INPUT, "b", 0)
	ids["xor"] = n.Add(cell.XOR2, "xor", 0, ids["a"], ids["b"])
	ids["and"] = n.Add(cell.AND2, "and", 0, ids["a"], ids["b"])
	ids["ff0"] = n.Add(cell.DFF, "ff0", 0, ids["xor"])
	ids["ff1"] = n.Add(cell.DFF, "ff1", 0, ids["and"])
	ids["or"] = n.Add(cell.OR2, "or", 1, ids["ff0"], ids["ff1"])
	ids["ff2"] = n.Add(cell.DFF, "ff2", 1, ids["or"])
	n.MarkData(ids["ff0"])
	return n, ids
}

func TestValidateAndTopo(t *testing.T) {
	n, ids := buildToy()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	topo, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[GateID]int{}
	for i, id := range topo {
		pos[id] = i
	}
	if len(topo) != n.NumGates() {
		t.Fatalf("topo covers %d of %d gates", len(topo), n.NumGates())
	}
	// xor must come after its inputs.
	if pos[ids["xor"]] < pos[ids["a"]] || pos[ids["xor"]] < pos[ids["b"]] {
		t.Error("topo order violates dependency")
	}
	// or must come after the flip-flops that feed it.
	if pos[ids["or"]] < pos[ids["ff0"]] || pos[ids["or"]] < pos[ids["ff1"]] {
		t.Error("or scheduled before its FF sources")
	}
}

func TestEndpointsAndClasses(t *testing.T) {
	n, ids := buildToy()
	eps0 := n.Endpoints(0)
	if len(eps0) != 2 {
		t.Fatalf("stage 0 endpoints = %d, want 2", len(eps0))
	}
	data := n.DataEndpoints(0)
	if len(data) != 1 || data[0] != ids["ff0"] {
		t.Errorf("data endpoints = %v", data)
	}
	ctrl := n.ControlEndpoints(0)
	if len(ctrl) != 1 || ctrl[0] != ids["ff1"] {
		t.Errorf("control endpoints = %v", ctrl)
	}
	if len(n.Endpoints(1)) != 1 {
		t.Error("stage 1 should have one endpoint")
	}
}

func TestFanout(t *testing.T) {
	n, ids := buildToy()
	fo := n.Fanout(ids["a"])
	if len(fo) != 2 {
		t.Fatalf("fanout of a = %v", fo)
	}
	if len(n.Fanout(ids["ff2"])) != 0 {
		t.Error("ff2 should have no fanout")
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	n := New("cyc", 1)
	a := n.Add(cell.INPUT, "a", 0)
	// Build a cycle through two combinational gates using a placeholder,
	// then patch the fanin to create or1 -> and1 -> or1.
	and1 := n.Add(cell.AND2, "and1", 0, a, a)
	or1 := n.Add(cell.OR2, "or1", 0, and1, a)
	n.Gate(and1).Fanin[1] = or1
	n.dirty = true
	err := n.Validate()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("expected cycle error, got %v", err)
	}
}

func TestDFFBreaksCycle(t *testing.T) {
	// A feedback loop through a flip-flop is legal (it is a state machine).
	n := New("fsm", 1)
	seed := n.Add(cell.CONST0, "seed", 0)
	inv := n.Add(cell.INV, "inv", 0, seed) // placeholder fanin patched below
	ff := n.Add(cell.DFF, "ff", 0, inv)
	n.Gate(inv).Fanin[0] = ff
	n.dirty = true
	if err := n.Validate(); err != nil {
		t.Fatalf("FF feedback loop should validate: %v", err)
	}
}

func TestAddPanicsOnBadArity(t *testing.T) {
	n := New("bad", 1)
	a := n.Add(cell.INPUT, "a", 0)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong arity")
		}
	}()
	n.Add(cell.AND2, "and", 0, a) // AND2 needs 2 inputs
}

func TestValidateStageRange(t *testing.T) {
	n := New("stage", 1)
	n.Add(cell.INPUT, "a", 5)
	if err := n.Validate(); err == nil {
		t.Error("out-of-range stage should fail validation")
	}
}

func TestSortPathsByDelay(t *testing.T) {
	ps := []Path{
		{Gates: []GateID{3}, Endpoint: 9, NominalDelay: 50},
		{Gates: []GateID{1}, Endpoint: 7, NominalDelay: 120},
		{Gates: []GateID{2}, Endpoint: 7, NominalDelay: 120},
	}
	SortPathsByDelay(ps)
	if ps[0].NominalDelay != 120 || ps[2].NominalDelay != 50 {
		t.Error("paths not sorted by delay")
	}
	if ps[0].Gates[0] != 1 || ps[1].Gates[0] != 2 {
		t.Error("tie break not deterministic")
	}
}
