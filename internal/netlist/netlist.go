// Package netlist represents gate-level processor netlists as the graph N of
// Section 3 of the paper: vertices are gates, edges are nets, and endpoints
// (flip-flops and ports) delimit timing paths. It provides construction,
// validation, topological ordering, and the path machinery Algorithm 1
// consumes.
package netlist

import (
	"fmt"
	"sort"
	"strings"

	"tsperr/internal/cell"
)

// GateID indexes a gate within a Netlist.
type GateID int32

// Gate is one vertex of the netlist graph.
type Gate struct {
	ID   GateID
	Kind cell.Kind
	Name string
	// Fanin lists the driver of each input pin, in pin order.
	Fanin []GateID
	// Stage is the pipeline stage the gate belongs to (combinational gates)
	// or whose output register bank it is part of (DFFs).
	Stage int
	// X, Y are normalized die coordinates in [0, 1), used by the spatial
	// process-variation model.
	X, Y float64
	// Data marks a *data endpoint* in the paper's sense: an endpoint that
	// holds operands, results, condition codes, or intermediate values.
	// Endpoints with Data == false are control endpoints.
	Data bool
	// Unused declares that the gate's output intentionally drives nothing
	// (e.g. the final carry-out of an adder whose width is fixed). The
	// structural linter flags dangling outputs unless they are declared
	// here.
	Unused bool
}

// IsEndpoint reports whether the gate terminates timing paths (flip-flop).
func (g *Gate) IsEndpoint() bool { return g.Kind == cell.DFF }

// Netlist is the graph N. Gates are stored densely and identified by GateID.
type Netlist struct {
	Name   string
	Stages int

	gates  []Gate
	fanout [][]GateID
	topo   []GateID // combinational evaluation order, sources first
	dirty  bool
}

// New returns an empty netlist with the given number of pipeline stages.
func New(name string, stages int) *Netlist {
	return &Netlist{Name: name, Stages: stages, dirty: true}
}

// Add appends a gate and returns its ID. Fanin IDs must already exist.
func (n *Netlist) Add(kind cell.Kind, name string, stage int, fanin ...GateID) GateID {
	id := GateID(len(n.gates))
	for _, f := range fanin {
		if int(f) < 0 || int(f) >= len(n.gates) {
			panic(fmt.Sprintf("netlist: fanin %d of %q out of range", f, name))
		}
	}
	if want := kind.NumInputs(); len(fanin) != want {
		panic(fmt.Sprintf("netlist: %v %q needs %d inputs, got %d", kind, name, want, len(fanin)))
	}
	n.gates = append(n.gates, Gate{ID: id, Kind: kind, Name: name, Stage: stage, Fanin: fanin})
	n.dirty = true
	return id
}

// Gate returns the gate with the given ID.
func (n *Netlist) Gate(id GateID) *Gate { return &n.gates[id] }

// NumGates returns the number of gates.
func (n *Netlist) NumGates() int { return len(n.gates) }

// Gates returns the gate slice (read-only by convention).
func (n *Netlist) Gates() []Gate { return n.gates }

// SetPlacement assigns die coordinates to a gate.
func (n *Netlist) SetPlacement(id GateID, x, y float64) {
	n.gates[id].X = x
	n.gates[id].Y = y
}

// MarkData marks a gate as a data endpoint.
func (n *Netlist) MarkData(id GateID) { n.gates[id].Data = true }

// MarkUnused declares that a gate's output intentionally drives nothing,
// exempting it from the linter's dangling-gate rule.
func (n *Netlist) MarkUnused(id GateID) { n.gates[id].Unused = true }

// Endpoints returns the endpoint IDs of a pipeline stage, matching E(N, s) of
// Table 1. If dataOnly or controlOnly filters are needed, use EndpointsOf.
func (n *Netlist) Endpoints(stage int) []GateID {
	return n.EndpointsOf(stage, func(*Gate) bool { return true })
}

// EndpointsOf returns the endpoints of a stage accepted by keep.
func (n *Netlist) EndpointsOf(stage int, keep func(*Gate) bool) []GateID {
	var out []GateID
	for i := range n.gates {
		g := &n.gates[i]
		if g.IsEndpoint() && g.Stage == stage && keep(g) {
			out = append(out, g.ID)
		}
	}
	return out
}

// ControlEndpoints returns the control endpoints of a stage.
func (n *Netlist) ControlEndpoints(stage int) []GateID {
	return n.EndpointsOf(stage, func(g *Gate) bool { return !g.Data })
}

// DataEndpoints returns the data endpoints of a stage.
func (n *Netlist) DataEndpoints(stage int) []GateID {
	return n.EndpointsOf(stage, func(g *Gate) bool { return g.Data })
}

// Fanout returns the fanout adjacency (computed lazily).
func (n *Netlist) Fanout(id GateID) []GateID {
	n.ensureBuilt()
	return n.fanout[id]
}

// TopoOrder returns all gates in an order where every combinational gate
// follows its fanins. Sources (inputs, constants, flip-flop outputs) come
// first. An error is returned if the combinational logic contains a cycle.
func (n *Netlist) TopoOrder() ([]GateID, error) {
	if err := n.build(); err != nil {
		return nil, err
	}
	return n.topo, nil
}

func (n *Netlist) ensureBuilt() {
	if err := n.build(); err != nil {
		panic(err)
	}
}

func (n *Netlist) build() error {
	if !n.dirty {
		return nil
	}
	m := len(n.gates)
	n.fanout = make([][]GateID, m)
	indeg := make([]int, m)
	for i := range n.gates {
		g := &n.gates[i]
		if g.Kind.IsSource() {
			continue // sources do not depend on fanins within a cycle
		}
		indeg[g.ID] = len(g.Fanin)
	}
	for i := range n.gates {
		g := &n.gates[i]
		for _, f := range g.Fanin {
			n.fanout[f] = append(n.fanout[f], g.ID)
		}
	}
	// Kahn's algorithm over the combinational graph: DFF/INPUT start ready.
	queue := make([]GateID, 0, m)
	for i := range n.gates {
		if indeg[i] == 0 {
			queue = append(queue, GateID(i))
		}
	}
	topo := make([]GateID, 0, m)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		topo = append(topo, id)
		for _, s := range n.fanout[id] {
			if n.gates[s].Kind.IsSource() {
				continue // edge into a DFF's D pin does not gate evaluation
			}
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(topo) != m {
		// Every non-source gate with remaining in-degree sits on or behind a
		// cycle; naming them turns "somewhere in 5000 gates" into a fixable
		// report.
		const maxNamed = 8
		var stuck []string
		extra := 0
		for i := range n.gates {
			g := &n.gates[i]
			if g.Kind.IsSource() || indeg[g.ID] == 0 {
				continue
			}
			if len(stuck) < maxNamed {
				stuck = append(stuck, fmt.Sprintf("%s(%v, stage %d)", g.Name, g.Kind, g.Stage))
			} else {
				extra++
			}
		}
		more := ""
		if extra > 0 {
			more = fmt.Sprintf(" and %d more", extra)
		}
		return fmt.Errorf("netlist %q: combinational cycle detected (%d of %d gates ordered); unresolved gates: %s%s",
			n.Name, len(topo), m, strings.Join(stuck, ", "), more)
	}
	n.topo = topo
	n.dirty = false
	return nil
}

// Validate checks structural invariants: fanin arities, stage ranges, and
// combinational acyclicity.
func (n *Netlist) Validate() error {
	for i := range n.gates {
		g := &n.gates[i]
		if want := g.Kind.NumInputs(); len(g.Fanin) != want {
			return fmt.Errorf("netlist %q: gate %q has %d fanins, want %d",
				n.Name, g.Name, len(g.Fanin), want)
		}
		if g.Stage < 0 || g.Stage >= n.Stages {
			return fmt.Errorf("netlist %q: gate %q stage %d outside [0,%d)",
				n.Name, g.Name, g.Stage, n.Stages)
		}
	}
	return n.build()
}

// Path is an ordered set of gates per Definition 3.1: it starts at a source
// (the only endpoint in the set, or a primary input), walks through
// combinational gates, and its last gate drives an endpoint. Endpoint records
// the flip-flop that captures the path.
type Path struct {
	Gates    []GateID
	Endpoint GateID
	// NominalDelay caches the summed nominal delay including the endpoint's
	// setup time; it is the key paths are ranked by before SSTA refines them.
	NominalDelay float64
}

// String renders a short description for diagnostics.
func (p Path) String() string {
	return fmt.Sprintf("path(%d gates -> ep %d, %.1fps)", len(p.Gates), p.Endpoint, p.NominalDelay)
}

// SortPathsByDelay sorts paths most-critical (longest nominal delay) first,
// breaking ties deterministically by endpoint then first gate.
func SortPathsByDelay(ps []Path) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].NominalDelay > ps[j].NominalDelay {
			return true
		}
		if ps[i].NominalDelay < ps[j].NominalDelay {
			return false
		}
		if ps[i].Endpoint != ps[j].Endpoint {
			return ps[i].Endpoint < ps[j].Endpoint
		}
		if len(ps[i].Gates) > 0 && len(ps[j].Gates) > 0 {
			return ps[i].Gates[0] < ps[j].Gates[0]
		}
		return len(ps[i].Gates) < len(ps[j].Gates)
	})
}
