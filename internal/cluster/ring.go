package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// vnodes is the number of ring points per member. 64 keeps the assignment
// spread within a few percent of uniform for single-digit cluster sizes while
// the whole ring stays small enough to rebuild on startup without care.
const vnodes = 64

// ring is a consistent-hash ring over the cluster members (worker base URLs
// plus the empty string for the local execution slot). Membership is fixed at
// construction: health is a routing-time concern (owners returns the full
// successor order and the caller takes the first usable member), so a
// flapping peer never reshuffles keys that were not on it.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash   uint64
	member string
}

func newRing(members []string) *ring {
	r := &ring{points: make([]ringPoint, 0, len(members)*vnodes)}
	for _, m := range members {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", m, i)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// owners returns every distinct member in ring order starting at the key's
// successor point: the first entry is the key's owner, the rest are the
// spill-over order when the owner is unusable.
func (r *ring) owners(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, 4)
	seen := make(map[string]bool, 4)
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		out = append(out, p.member)
	}
	return out
}

// hash64 maps a string onto the ring's key space via SHA-256 (the same hash
// family request keys already use, so placement inherits its uniformity).
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
