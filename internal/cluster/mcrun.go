package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"tsperr/internal/core"
	"tsperr/internal/montecarlo"
)

// maxChunkResponse bounds a worker's chunk response body: a chunk carries at
// most DefaultChunkSize float64 counts, far under this.
const maxChunkResponse = 8 << 20

// MCRun is the coordinator's core.MCRunner: it splits the validation run's
// trial budget into chunks and races them across the healthy peers and the
// local CPUs through the work-stealing scheduler. Failed remote chunks are
// re-queued for any other runner, chunks in flight longer than HedgeAfter are
// speculatively re-dispatched (first result wins), and the local runners
// guarantee completion even with every peer dead — the distributed result is
// bit-identical to montecarlo.RunSharded in every case, because chunk results
// do not depend on where they execute and assembly requires exactly one copy
// of each.
//
// Jobs the analytic run marked LocalOnly (degraded or fault-injected), jobs
// with no benchmark identity a worker could rebuild from, and jobs on a
// peerless coordinator run locally outright.
func (c *Coordinator) MCRun(ctx context.Context, job core.MCJob) (*montecarlo.ShardedResult, error) {
	if job.LocalOnly || job.Benchmark == "" || len(c.peers) == 0 {
		return montecarlo.RunSharded(ctx, job.Spec, job.Shard)
	}
	n := montecarlo.NumChunks(job.Spec.Trials, job.ChunkSize)
	if n == 0 {
		// Invalid budget; let the local path produce the canonical error.
		return montecarlo.RunSharded(ctx, job.Spec, job.Shard)
	}

	s := newSched(n)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// runners tracks the chunk executors; aux tracks the watcher and hedge
	// monitor, which exit on runCtx and are therefore waited only after the
	// explicit cancel below (folding them into runners would deadlock: they
	// outlive the last chunk).
	var runners, aux sync.WaitGroup

	// Cancellation watcher: a dead context releases every blocked runner.
	// fail is a no-op once all chunks are delivered, so the post-run cancel
	// cannot poison a completed run.
	aux.Add(1)
	go func() {
		defer aux.Done()
		<-runCtx.Done()
		s.fail(runCtx.Err())
	}()

	// Hedge monitor: re-dispatch chunks stuck in flight. The sweep period is
	// a fraction of the threshold so a stuck chunk waits at most ~1.25x
	// HedgeAfter before a second copy races it.
	aux.Add(1)
	go func() {
		defer aux.Done()
		period := c.cfg.HedgeAfter / 4
		if period < 10*time.Millisecond {
			period = 10 * time.Millisecond
		}
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-t.C:
				if h := s.hedge(c.cfg.HedgeAfter); h > 0 {
					c.stats.hedgedChunks.Add(uint64(h))
				}
			}
		}
	}()

	// Local runners: always present, so the run completes even if every peer
	// dies mid-flight. A local execution failure is fatal — it would fail the
	// serial run identically.
	local := c.cfg.LocalWorkers
	if w := job.Shard.Workers; w > 0 && w < local {
		local = w
	}
	for i := 0; i < local; i++ {
		runners.Add(1)
		go func() {
			defer runners.Done()
			for {
				chunk, ok := s.next()
				if !ok {
					return
				}
				res, err := montecarlo.RunChunk(runCtx, job.Spec, job.ChunkSize, chunk)
				if err != nil {
					s.fail(err)
					return
				}
				if s.deliver(chunk, res) {
					c.stats.localChunks.Add(1)
				}
			}
		}()
	}

	// Remote runners: PeerConcurrency per peer. A runner retires when its
	// peer drops unhealthy; its failed chunk re-queues for anyone else (work
	// stealing). Unhealthy-at-start peers contribute no runners.
	for _, p := range c.peers {
		if !p.isHealthy() {
			continue
		}
		for i := 0; i < c.cfg.PeerConcurrency; i++ {
			runners.Add(1)
			go func(p *peer) {
				defer runners.Done()
				for p.isHealthy() {
					chunk, ok := s.next()
					if !ok {
						return
					}
					res, err := c.remoteChunk(runCtx, p, job, chunk)
					if err != nil {
						c.reportFailure(p, err)
						if s.requeue(chunk) {
							c.stats.stolenChunks.Add(1)
						}
						if runCtx.Err() != nil {
							return
						}
						continue
					}
					c.reportSuccess(p)
					if s.deliver(chunk, res) {
						c.stats.remoteChunks.Add(1)
					}
				}
			}(p)
		}
	}

	runners.Wait()
	cancel()
	aux.Wait()
	results, err := s.outcome()
	if err != nil {
		return nil, err
	}
	return montecarlo.Assemble(job.Spec.Trials, job.ChunkSize, results)
}

// remoteChunk executes one chunk on a peer via POST /v1/cluster/chunk,
// bounded by ChunkTimeout.
func (c *Coordinator) remoteChunk(ctx context.Context, p *peer, job core.MCJob, chunk int) (montecarlo.ChunkResult, error) {
	body, err := json.Marshal(ChunkRequest{
		Benchmark: job.Benchmark,
		Scenarios: job.Scenarios,
		Trials:    job.Spec.Trials,
		Seed:      job.Spec.Seed,
		ChunkSize: job.ChunkSize,
		Index:     chunk,
	})
	if err != nil {
		return montecarlo.ChunkResult{}, err
	}
	cctx, cancel := context.WithTimeout(ctx, c.cfg.ChunkTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, p.addr+"/v1/cluster/chunk", bytes.NewReader(body))
	if err != nil {
		return montecarlo.ChunkResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderFingerprint, c.cfg.Fingerprint)
	req.Header.Set(HeaderChunk, strconv.Itoa(chunk))
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return montecarlo.ChunkResult{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		c.stats.fingerprintMismatches.Add(1)
		return montecarlo.ChunkResult{}, fmt.Errorf("cluster: %s runs a different model (409)", p.addr)
	}
	if resp.StatusCode != http.StatusOK {
		return montecarlo.ChunkResult{}, fmt.Errorf("cluster: chunk %d on %s: %s", chunk, p.addr, resp.Status)
	}
	var res montecarlo.ChunkResult
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxChunkResponse)).Decode(&res); err != nil {
		return montecarlo.ChunkResult{}, fmt.Errorf("cluster: chunk %d on %s: bad response: %w", chunk, p.addr, err)
	}
	if res.Index != chunk {
		return montecarlo.ChunkResult{}, fmt.Errorf("cluster: %s answered chunk %d with chunk %d", p.addr, chunk, res.Index)
	}
	return res, nil
}
