package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"tsperr/internal/core"
)

// maxProxyResponse bounds a proxied estimate response body.
const maxProxyResponse = 8 << 20

// proxyResponse is the slice of the peer's estimate response the coordinator
// needs; core.Report's UnmarshalJSON guarantees the re-marshal served to the
// client is byte-identical to what the worker produced.
type proxyResponse struct {
	Report *core.Report `json:"report"`
}

// proxyError mirrors the peer's error body for diagnostics.
type proxyError struct {
	Error string `json:"error"`
}

// ProxyEstimate routes an estimate request (its already-validated JSON body)
// to the peer that owns its key and returns the peer's report. The Forwarded
// header stops the peer from routing onward, and the fingerprint header makes
// a model mismatch an explicit 409 instead of silently mixed results. Any
// error — transport, timeout, non-200 — is reported against the peer and
// surfaced to the caller, which falls back to local execution: routing can
// make a request cheaper, never fail it.
func (c *Coordinator) ProxyEstimate(ctx context.Context, addr string, body []byte) (*core.Report, error) {
	p := c.peerByAddr(addr)
	if p == nil {
		return nil, fmt.Errorf("cluster: unknown peer %q", addr)
	}
	rep, err := c.proxyOnce(ctx, p, body)
	if err != nil {
		c.reportFailure(p, err)
		c.stats.proxyFallbacks.Add(1)
		return nil, err
	}
	c.reportSuccess(p)
	c.stats.proxiedEstimates.Add(1)
	return rep, nil
}

func (c *Coordinator) proxyOnce(ctx context.Context, p *peer, body []byte) (*core.Report, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.addr+"/v1/estimate", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderForwarded, "1")
	req.Header.Set(HeaderFingerprint, c.cfg.Fingerprint)
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyResponse))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusConflict {
		c.stats.fingerprintMismatches.Add(1)
		return nil, fmt.Errorf("cluster: %s runs a different model (409)", p.addr)
	}
	if resp.StatusCode != http.StatusOK {
		var pe proxyError
		if json.Unmarshal(raw, &pe) == nil && pe.Error != "" {
			return nil, fmt.Errorf("cluster: %s: %s: %s", p.addr, resp.Status, pe.Error)
		}
		return nil, fmt.Errorf("cluster: %s: %s", p.addr, resp.Status)
	}
	var pr proxyResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		return nil, fmt.Errorf("cluster: %s: bad estimate response: %w", p.addr, err)
	}
	if pr.Report == nil {
		return nil, fmt.Errorf("cluster: %s: estimate response carried no report", p.addr)
	}
	return pr.Report, nil
}
