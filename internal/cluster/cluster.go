// Package cluster distributes tsperrd work across peer daemons. A
// coordinator node fans the chunks of a Monte Carlo validation run out over
// worker nodes (plus its own CPUs) and routes plain estimate requests by
// consistent hash so identical requests arriving at different front-ends
// dedup cluster-wide. Everything is stdlib HTTP/JSON.
//
// Distribution is a scheduling decision, never a semantic one: chunk results
// are bit-identical wherever they run (montecarlo.RunChunk is a pure function
// of spec, chunk size, and index, and Go's JSON float64 encoding round-trips
// exactly), assembly validates that exactly one copy of every chunk landed,
// and any remote failure falls back to local execution. A cluster of N nodes
// can therefore be killed down to the coordinator alone mid-run and still
// produce the same bytes a single node would have — just slower.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tsperr/internal/retry"
)

// Config assembles a Coordinator. Zero fields select the documented defaults.
type Config struct {
	// Peers are the worker base URLs (e.g. "http://10.0.0.2:8080"). The local
	// execution slot is always a ring member in addition to these.
	Peers []string
	// Fingerprint is this node's model fingerprint, sent with every
	// intra-cluster request and verified by the receiver.
	Fingerprint string
	// Client issues intra-cluster requests; tests wrap its transport with
	// fault injection. Default: a dedicated client with no global timeout
	// (per-call contexts bound every request).
	Client *http.Client
	// ProbeInterval is the health-probe period for a healthy peer (default
	// 2s); a failing peer is instead re-probed on the Backoff schedule.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe (default 1s).
	ProbeTimeout time.Duration
	// ChunkTimeout bounds one remote chunk execution (default 30s); on expiry
	// the chunk is re-queued for any other runner.
	ChunkTimeout time.Duration
	// HedgeAfter re-dispatches a chunk still in flight after this long
	// (default ChunkTimeout/2), racing a second copy against the slow one;
	// first result wins.
	HedgeAfter time.Duration
	// PeerConcurrency is the number of chunks kept in flight per healthy peer
	// (default 2).
	PeerConcurrency int
	// LocalWorkers is the number of local chunk runners participating in a
	// distributed run (default GOMAXPROCS, minimum 1 — the local slot is the
	// progress guarantee when every peer is dead).
	LocalWorkers int
	// Backoff shapes the probe retry schedule for an unhealthy peer (default
	// 250ms base, 5s cap, full jitter).
	Backoff retry.Policy
	// MaxConsecutiveFailures is how many request failures in a row mark a
	// peer unhealthy without waiting for a probe (default 2).
	MaxConsecutiveFailures int
	// Quorum is the healthy-peer count Ready requires (default: a majority
	// of the configured peers, minimum 1 when any peer is configured).
	Quorum int
}

// peer tracks one worker's health and traffic counters.
type peer struct {
	addr string

	mu sync.Mutex
	// healthy is the routing eligibility flag; guarded by mu.
	healthy bool
	// consecFails counts request failures since the last success; guarded by mu.
	consecFails int
	// lastErr is the most recent failure, for /metrics and /readyz; guarded by mu.
	lastErr string

	successes atomic.Uint64
	failures  atomic.Uint64
}

func (p *peer) isHealthy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.healthy
}

// PeerStatus is a point-in-time snapshot of one peer, reported by /readyz and
// /metrics.
type PeerStatus struct {
	Addr                string `json:"addr"`
	Healthy             bool   `json:"healthy"`
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
	Successes           uint64 `json:"successes"`
	Failures            uint64 `json:"failures"`
	LastError           string `json:"last_error,omitempty"`
}

// Stats are the coordinator's cumulative distribution counters.
type Stats struct {
	// RemoteChunks and LocalChunks count accepted chunk results by origin.
	RemoteChunks uint64
	LocalChunks  uint64
	// StolenChunks counts chunks re-queued after a remote failure and
	// completed by another runner; HedgedChunks counts speculative
	// re-dispatches of slow in-flight chunks.
	StolenChunks uint64
	HedgedChunks uint64
	// ProxiedEstimates counts estimate requests routed to a peer and answered
	// there; ProxyFallbacks counts routed requests that fell back to local
	// execution after a peer failure.
	ProxiedEstimates uint64
	ProxyFallbacks   uint64
	// FingerprintMismatches counts 409s from peers running a different model.
	FingerprintMismatches uint64
}

type stats struct {
	remoteChunks          atomic.Uint64
	localChunks           atomic.Uint64
	stolenChunks          atomic.Uint64
	hedgedChunks          atomic.Uint64
	proxiedEstimates      atomic.Uint64
	proxyFallbacks        atomic.Uint64
	fingerprintMismatches atomic.Uint64
}

// Coordinator owns the cluster view of one tsperrd node: the peer set with
// its health probes, the consistent-hash ring, and the distributed executors
// (MCRun for Monte Carlo fan-out, ProxyEstimate for request routing).
type Coordinator struct {
	cfg   Config
	peers []*peer
	ring  *ring
	stats stats

	// probing serializes Start/Stop; guarded by probeMu.
	probeMu sync.Mutex
	// probeStop cancels the probe goroutines; guarded by probeMu.
	probeStop context.CancelFunc
	probeWG   sync.WaitGroup
}

// New builds a Coordinator over the configured peers. Peers start unhealthy;
// call Start to launch background probes (or ProbeOnce for a synchronous
// sweep) before expecting remote traffic.
func New(cfg Config) *Coordinator {
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.ChunkTimeout <= 0 {
		cfg.ChunkTimeout = 30 * time.Second
	}
	if cfg.HedgeAfter <= 0 {
		cfg.HedgeAfter = cfg.ChunkTimeout / 2
	}
	if cfg.PeerConcurrency <= 0 {
		cfg.PeerConcurrency = 2
	}
	if cfg.LocalWorkers <= 0 {
		cfg.LocalWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.Backoff == (retry.Policy{}) {
		cfg.Backoff = retry.Policy{Base: 250 * time.Millisecond, Cap: 5 * time.Second, Jitter: true}
	}
	if cfg.MaxConsecutiveFailures <= 0 {
		cfg.MaxConsecutiveFailures = 2
	}
	if cfg.Quorum <= 0 && len(cfg.Peers) > 0 {
		cfg.Quorum = (len(cfg.Peers) + 1) / 2
	}
	c := &Coordinator{cfg: cfg}
	members := make([]string, 0, len(cfg.Peers)+1)
	members = append(members, "") // the local execution slot
	for _, addr := range cfg.Peers {
		c.peers = append(c.peers, &peer{addr: addr})
		members = append(members, addr)
	}
	c.ring = newRing(members)
	return c
}

// Start launches one background health prober per peer under ctx. Healthy
// peers are re-probed every ProbeInterval; an unhealthy peer follows the
// capped-exponential-with-jitter Backoff schedule (seeded by its address:
// reproducible per peer, decorrelated across peers) so a recovering node is
// not stampeded.
func (c *Coordinator) Start(ctx context.Context) {
	c.probeMu.Lock()
	defer c.probeMu.Unlock()
	if c.probeStop != nil {
		return
	}
	probeCtx, cancel := context.WithCancel(ctx)
	c.probeStop = cancel
	for _, p := range c.peers {
		c.probeWG.Add(1)
		go func(p *peer) {
			defer c.probeWG.Done()
			c.probeLoop(probeCtx, p)
		}(p)
	}
}

// Stop halts the probers and waits for them to exit.
func (c *Coordinator) Stop() {
	c.probeMu.Lock()
	stop := c.probeStop
	c.probeStop = nil
	c.probeMu.Unlock()
	if stop != nil {
		stop()
	}
	c.probeWG.Wait()
}

func (c *Coordinator) probeLoop(ctx context.Context, p *peer) {
	b := retry.NewBackoff(c.cfg.Backoff, hash64(p.addr))
	for {
		healthy := c.probe(ctx, p)
		var err error
		if healthy {
			b.Reset()
			err = retry.Sleep(ctx, c.cfg.ProbeInterval)
		} else {
			err = b.Wait(ctx)
		}
		if err != nil {
			return
		}
	}
}

// probe checks one peer's /healthz and updates its state.
func (c *Coordinator) probe(ctx context.Context, p *peer) bool {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, p.addr+"/healthz", nil)
	if err != nil {
		c.markPeer(p, false, err)
		return false
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		c.markPeer(p, false, err)
		return false
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.markPeer(p, false, fmt.Errorf("probe: %s", resp.Status))
		return false
	}
	c.markPeer(p, true, nil)
	return true
}

// ProbeOnce sweeps every peer synchronously — startup and tests use it to
// establish the health view without waiting out a probe period.
func (c *Coordinator) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, p := range c.peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			c.probe(ctx, p)
		}(p)
	}
	wg.Wait()
}

// markPeer applies a probe outcome: probes flip health in both directions and
// clear the consecutive-failure count on success.
func (c *Coordinator) markPeer(p *peer, healthy bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.healthy = healthy
	if healthy {
		p.consecFails = 0
		p.lastErr = ""
	} else if err != nil {
		p.lastErr = err.Error()
	}
}

// reportSuccess records a successful intra-cluster request against a peer.
func (c *Coordinator) reportSuccess(p *peer) {
	p.successes.Add(1)
	p.mu.Lock()
	p.consecFails = 0
	p.mu.Unlock()
}

// reportFailure records a failed intra-cluster request; enough failures in a
// row mark the peer unhealthy immediately (the prober restores it later)
// so the dispatch path stops wasting timeouts on a dead node.
func (c *Coordinator) reportFailure(p *peer, err error) {
	p.failures.Add(1)
	p.mu.Lock()
	p.consecFails++
	p.lastErr = err.Error()
	if p.consecFails >= c.cfg.MaxConsecutiveFailures {
		p.healthy = false
	}
	p.mu.Unlock()
}

// peerByAddr returns the tracked peer for a ring member ("" and unknown
// addresses return nil).
func (c *Coordinator) peerByAddr(addr string) *peer {
	for _, p := range c.peers {
		if p.addr == addr {
			return p
		}
	}
	return nil
}

// HealthyPeers counts peers currently marked healthy.
func (c *Coordinator) HealthyPeers() int {
	n := 0
	for _, p := range c.peers {
		if p.isHealthy() {
			n++
		}
	}
	return n
}

// Quorum is the healthy-peer count Ready requires.
func (c *Coordinator) Quorum() int { return c.cfg.Quorum }

// Ready reports whether the cluster view supports distributed operation: a
// quorum of peers is healthy. A coordinator below quorum still serves — every
// path degrades to local execution — but advertises not-ready so load
// balancers prefer fully connected nodes.
func (c *Coordinator) Ready() bool { return c.HealthyPeers() >= c.cfg.Quorum }

// PeerStatuses snapshots every peer in configuration order.
func (c *Coordinator) PeerStatuses() []PeerStatus {
	out := make([]PeerStatus, len(c.peers))
	for i, p := range c.peers {
		p.mu.Lock()
		out[i] = PeerStatus{
			Addr:                p.addr,
			Healthy:             p.healthy,
			ConsecutiveFailures: p.consecFails,
			LastError:           p.lastErr,
		}
		p.mu.Unlock()
		out[i].Successes = p.successes.Load()
		out[i].Failures = p.failures.Load()
	}
	return out
}

// Stats snapshots the distribution counters.
func (c *Coordinator) Stats() Stats {
	return Stats{
		RemoteChunks:          c.stats.remoteChunks.Load(),
		LocalChunks:           c.stats.localChunks.Load(),
		StolenChunks:          c.stats.stolenChunks.Load(),
		HedgedChunks:          c.stats.hedgedChunks.Load(),
		ProxiedEstimates:      c.stats.proxiedEstimates.Load(),
		ProxyFallbacks:        c.stats.proxyFallbacks.Load(),
		FingerprintMismatches: c.stats.fingerprintMismatches.Load(),
	}
}

// Route returns the healthy cluster member that owns a request key, or ""
// for local execution. Ownership comes from the consistent-hash ring over
// all members; an unhealthy owner's keys spill to its ring successor rather
// than reshuffling the whole space, so cluster-wide dedup survives churn for
// every key not on the failed node.
func (c *Coordinator) Route(key string) string {
	for _, m := range c.ring.owners(key) {
		if m == "" {
			return ""
		}
		if p := c.peerByAddr(m); p != nil && p.isHealthy() {
			return m
		}
	}
	return ""
}
