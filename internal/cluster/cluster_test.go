// The chaos suite: every distributed test compares the fan-out result
// bit-for-bit against montecarlo.RunSharded on the same spec, because
// distribution is a scheduling decision and must never be a semantic one —
// not with dead workers, not with injected network faults, not with hedged
// re-dispatch.
package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tsperr/internal/core"
	"tsperr/internal/errormodel"
	"tsperr/internal/faultinject"
	"tsperr/internal/isa"
	"tsperr/internal/montecarlo"
	"tsperr/internal/retry"
)

const loopSrc = `
	li r1, 40
	li r2, 0
loop:
	add  r2, r2, r1
	addi r1, r1, -1
	bne  r1, r0, loop
	halt
`

// testSpec builds a Monte Carlo spec over the loop program with synthetic
// scenario-scaled conditionals (the same shape the montecarlo package tests
// use). Every node in a test cluster derives its spec from this one function,
// mirroring how real workers rebuild specs from the benchmark identity.
func testSpec(t *testing.T, scenarios, trials int, seed uint64) montecarlo.Spec {
	t.Helper()
	p, err := isa.Assemble("mcloop", loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	conds := make([]*errormodel.Conditionals, scenarios)
	for s := range conds {
		n := len(p.Insts)
		cond := &errormodel.Conditionals{PC: make([]float64, n), PE: make([]float64, n)}
		f := 1 + 0.2*float64(s)
		for i := range cond.PC {
			cond.PC[i] = 0.02 * f
			cond.PE[i] = 0.05 * f
		}
		conds[s] = cond
	}
	return montecarlo.Spec{Prog: p, Cond: conds, Trials: trials, Seed: seed}
}

// testWorker is a fake worker node: /healthz liveness plus real chunk
// execution via montecarlo.RunChunk, with knobs for the chaos tests.
type testWorker struct {
	srv  *httptest.Server
	spec montecarlo.Spec

	// chunkCalls counts chunk requests that reached the handler.
	chunkCalls atomic.Int64
	// killed drops every connection, emulating a dead process.
	killed atomic.Bool
	// dieAfter, when positive, flips killed once that many chunk requests
	// have been served — the worker dies mid-run.
	dieAfter int64
	// slow delays every chunk response, for the hedging test.
	slow time.Duration
	// fingerprint, when set, 409s any chunk request carrying a different one.
	fingerprint string
}

func newTestWorker(t *testing.T, spec montecarlo.Spec) *testWorker {
	t.Helper()
	w := &testWorker{spec: spec}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		if w.killed.Load() {
			panic(http.ErrAbortHandler)
		}
		rw.WriteHeader(http.StatusOK)
		io.WriteString(rw, `{"status":"ok"}`)
	})
	mux.HandleFunc("POST /v1/cluster/chunk", func(rw http.ResponseWriter, r *http.Request) {
		if w.killed.Load() {
			panic(http.ErrAbortHandler)
		}
		n := w.chunkCalls.Add(1)
		if w.dieAfter > 0 && n > w.dieAfter {
			w.killed.Store(true)
			panic(http.ErrAbortHandler)
		}
		if w.fingerprint != "" && r.Header.Get(HeaderFingerprint) != w.fingerprint {
			rw.WriteHeader(http.StatusConflict)
			return
		}
		if w.slow > 0 {
			time.Sleep(w.slow)
		}
		var creq ChunkRequest
		if err := json.NewDecoder(r.Body).Decode(&creq); err != nil {
			rw.WriteHeader(http.StatusBadRequest)
			return
		}
		spec := w.spec
		spec.Trials, spec.Seed = creq.Trials, creq.Seed
		res, err := montecarlo.RunChunk(r.Context(), spec, creq.ChunkSize, creq.Index)
		if err != nil {
			rw.WriteHeader(http.StatusInternalServerError)
			return
		}
		json.NewEncoder(rw).Encode(res)
	})
	w.srv = httptest.NewServer(mux)
	t.Cleanup(w.srv.Close)
	return w
}

// newTestCoordinator builds a probed coordinator over the workers with fast
// test timings.
func newTestCoordinator(t *testing.T, cfg Config, workers ...*testWorker) *Coordinator {
	t.Helper()
	for _, w := range workers {
		cfg.Peers = append(cfg.Peers, w.srv.URL)
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.ChunkTimeout == 0 {
		cfg.ChunkTimeout = 10 * time.Second
	}
	c := New(cfg)
	c.ProbeOnce(context.Background())
	return c
}

// mcJob wraps a spec in the job the analytic layer would hand the runner.
func mcJob(spec montecarlo.Spec, chunkSize int) core.MCJob {
	return core.MCJob{
		Benchmark: "mcloop",
		Scenarios: len(spec.Cond),
		ChunkSize: chunkSize,
		Spec:      spec,
		Shard:     montecarlo.ShardOpts{ChunkSize: chunkSize},
	}
}

// assertBitIdentical fails unless the two sharded results carry exactly the
// same bits — the determinism contract of the whole cluster layer.
func assertBitIdentical(t *testing.T, got, want *montecarlo.ShardedResult) {
	t.Helper()
	if got.Chunks != want.Chunks {
		t.Fatalf("chunks: got %d, want %d", got.Chunks, want.Chunks)
	}
	if got.Instructions != want.Instructions {
		t.Fatalf("instructions: got %d, want %d", got.Instructions, want.Instructions)
	}
	if got.Stats != want.Stats {
		t.Fatalf("stats: got %+v, want %+v", got.Stats, want.Stats)
	}
	if len(got.Counts) != len(want.Counts) {
		t.Fatalf("counts: got %d samples, want %d", len(got.Counts), len(want.Counts))
	}
	for i := range got.Counts {
		//tsperrlint:ignore floatcmp distributed samples are asserted bit-identical, not approximate
		if got.Counts[i] != want.Counts[i] {
			t.Fatalf("count %d: got %v, want %v", i, got.Counts[i], want.Counts[i])
		}
	}
}

// runChaos repeats a fresh distributed run until the chaos condition under
// test is observed. The scheduler races real goroutines, so a fast local
// drain can legitimately finish a run before the targeted fault lands; what
// must hold is that every run — faulted or not — is bit-identical, and that
// when the fault does land the scheduler absorbs it as claimed.
func runChaos(t *testing.T, tries int, attempt func() bool) {
	t.Helper()
	for i := 0; i < tries; i++ {
		if attempt() {
			return
		}
	}
	t.Fatalf("chaos condition not observed in %d runs", tries)
}

func TestRingOwnersCoverAllMembersDeterministically(t *testing.T) {
	members := []string{"", "http://a", "http://b", "http://c"}
	r1, r2 := newRing(members), newRing(members)
	firsts := map[string]bool{}
	for _, key := range []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"} {
		o1, o2 := r1.owners(key), r2.owners(key)
		if len(o1) != len(members) {
			t.Fatalf("owners(%q) returned %d members, want %d", key, len(o1), len(members))
		}
		seen := map[string]bool{}
		for i, m := range o1 {
			if seen[m] {
				t.Fatalf("owners(%q) repeats member %q", key, m)
			}
			seen[m] = true
			if o2[i] != m {
				t.Fatalf("owners(%q) not deterministic: %v vs %v", key, o1, o2)
			}
		}
		firsts[o1[0]] = true
	}
	if len(firsts) < 2 {
		t.Fatalf("8 keys all landed on one member %v; ring is not spreading", firsts)
	}
}

func TestRouteSpillsOnlyTheUnhealthyOwnersKeys(t *testing.T) {
	wa := newTestWorker(t, montecarlo.Spec{})
	wb := newTestWorker(t, montecarlo.Spec{})
	c := newTestCoordinator(t, Config{}, wa, wb)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = "key-" + strings.Repeat("x", i%7) + string(rune('a'+i%26))
	}
	before := make([]string, len(keys))
	for i, k := range keys {
		before[i] = c.Route(k)
	}
	c.markPeer(c.peerByAddr(wa.srv.URL), false, nil)
	for i, k := range keys {
		after := c.Route(k)
		switch {
		case before[i] == wa.srv.URL:
			if after == wa.srv.URL {
				t.Fatalf("key %q still routed to unhealthy peer", k)
			}
		case after != before[i]:
			t.Fatalf("key %q moved %q -> %q though its owner stayed healthy", k, before[i], after)
		}
	}
}

func TestSchedStealHedgeAndFirstWriterWins(t *testing.T) {
	s := newSched(3)
	c0, _ := s.next()
	c1, _ := s.next()
	c2, _ := s.next()
	if c0 != 0 || c1 != 1 || c2 != 2 {
		t.Fatalf("next handed out %d,%d,%d; want 0,1,2", c0, c1, c2)
	}
	// A failed chunk re-queues (the steal path) and is handed out again.
	if !s.requeue(1) {
		t.Fatal("requeue(1) refused an undelivered chunk")
	}
	if c, ok := s.next(); !ok || c != 1 {
		t.Fatalf("next after requeue: got %d,%v; want 1,true", c, ok)
	}
	// Hedging re-queues in-flight chunks, and the duplicate delivery loses.
	if n := s.hedge(0); n != 3 {
		t.Fatalf("hedge re-queued %d chunks, want 3", n)
	}
	if !s.deliver(0, montecarlo.ChunkResult{Index: 0, Counts: []float64{1}}) {
		t.Fatal("first delivery of chunk 0 rejected")
	}
	if s.deliver(0, montecarlo.ChunkResult{Index: 0, Counts: []float64{9}}) {
		t.Fatal("duplicate delivery of chunk 0 accepted")
	}
	if s.requeue(0) {
		t.Fatal("requeue accepted an already-delivered chunk")
	}
	s.deliver(1, montecarlo.ChunkResult{Index: 1})
	s.deliver(2, montecarlo.ChunkResult{Index: 2})
	// The hedged duplicates of 1 and 2 still sit in the queue; next must
	// skip them and report completion, and a late failure (the canceller
	// tearing down) must not poison the settled outcome.
	if c, ok := s.next(); ok {
		t.Fatalf("next returned chunk %d after completion", c)
	}
	s.fail(context.Canceled)
	res, err := s.outcome()
	if err != nil {
		t.Fatalf("outcome after late fail: %v", err)
	}
	if res[0].Counts[0] != 1 {
		t.Fatalf("chunk 0 result overwritten by hedged duplicate: %v", res[0].Counts)
	}
}

func TestDistributedBitIdenticalToSerial(t *testing.T) {
	spec := testSpec(t, 2, 400, 99)
	const chunkSize = 20
	serial, err := montecarlo.RunSharded(context.Background(), spec, montecarlo.ShardOpts{ChunkSize: chunkSize})
	if err != nil {
		t.Fatal(err)
	}
	runChaos(t, 50, func() bool {
		wa := newTestWorker(t, spec)
		wb := newTestWorker(t, spec)
		c := newTestCoordinator(t, Config{LocalWorkers: 1}, wa, wb)
		got, err := c.MCRun(context.Background(), mcJob(spec, chunkSize))
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, got, serial)
		st := c.Stats()
		if st.RemoteChunks+st.LocalChunks != 20 {
			t.Fatalf("accepted chunks %d remote + %d local, want 20 total", st.RemoteChunks, st.LocalChunks)
		}
		return st.RemoteChunks > 0
	})
}

func TestWorkerKilledMidRunIsStolenBitIdentical(t *testing.T) {
	// Enough chunks that the dying worker's runner reliably comes back for a
	// second claim while work remains: with only 20 chunks, the local worker
	// can drain the whole job before the second request lands (simulation is
	// fast enough since the interpreter overhaul), and the kill never fires.
	spec := testSpec(t, 2, 4000, 7)
	const chunkSize = 20
	serial, err := montecarlo.RunSharded(context.Background(), spec, montecarlo.ShardOpts{ChunkSize: chunkSize})
	if err != nil {
		t.Fatal(err)
	}
	runChaos(t, 50, func() bool {
		dying := newTestWorker(t, spec)
		// Serves one chunk, then drops every later connection mid-run while
		// its runner holds an undelivered chunk claim.
		dying.dieAfter = 1
		healthy := newTestWorker(t, spec)
		c := newTestCoordinator(t, Config{LocalWorkers: 1, MaxConsecutiveFailures: 1}, dying, healthy)
		got, err := c.MCRun(context.Background(), mcJob(spec, chunkSize))
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, got, serial)
		if !dying.killed.Load() {
			return false // run drained before the fault landed; go again
		}
		// The worker died holding a claimed chunk, so the scheduler must
		// have re-queued it for someone else, and the repeated failures must
		// have benched the peer.
		if st := c.Stats(); st.StolenChunks == 0 {
			t.Fatalf("worker died mid-run but no chunk was stolen: %+v", st)
		}
		if p := c.peerByAddr(dying.srv.URL); p.isHealthy() {
			t.Fatal("dead worker still marked healthy after repeated failures")
		}
		return true
	})
}

func TestInjectedNetworkFaultsStayBitIdentical(t *testing.T) {
	spec := testSpec(t, 2, 400, 13)
	const chunkSize = 20
	serial, err := montecarlo.RunSharded(context.Background(), spec, montecarlo.ShardOpts{ChunkSize: chunkSize})
	if err != nil {
		t.Fatal(err)
	}
	runChaos(t, 50, func() bool {
		// Chunk-targeted rules leave the probes alone (no chunk header =>
		// scenario -2, matched only by -1 wildcards). Resets before the
		// request, truncated response bodies, and injected latency across
		// chunks 0-5.
		inj := faultinject.New(1,
			faultinject.FailOnce(faultinject.NetRequest, 0),
			faultinject.FailOnce(faultinject.NetRequest, 1),
			faultinject.Rule{Point: faultinject.NetResponse, Scenario: 2, Mode: faultinject.Truncate, Times: 1},
			faultinject.Rule{Point: faultinject.NetResponse, Scenario: 3, Mode: faultinject.Truncate, Times: 1},
			faultinject.DelayEach(faultinject.NetRequest, 4, 30*time.Millisecond),
			faultinject.DelayEach(faultinject.NetRequest, 5, 30*time.Millisecond),
		)
		wa := newTestWorker(t, spec)
		wb := newTestWorker(t, spec)
		cfg := Config{
			LocalWorkers: 1,
			Client:       &http.Client{Transport: &faultinject.Transport{Injector: inj}},
			// Failures must not bench the peers for the whole run: the point
			// is surviving faults, not avoiding the faulty path.
			MaxConsecutiveFailures: 100,
		}
		c := newTestCoordinator(t, cfg, wa, wb)
		got, err := c.MCRun(context.Background(), mcJob(spec, chunkSize))
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, got, serial)
		return inj.Fired(faultinject.NetRequest)+inj.Fired(faultinject.NetResponse) > 0
	})
}

func TestLocalOnlyJobNeverLeavesTheNode(t *testing.T) {
	spec := testSpec(t, 2, 100, 5)
	const chunkSize = 20
	serial, err := montecarlo.RunSharded(context.Background(), spec, montecarlo.ShardOpts{ChunkSize: chunkSize})
	if err != nil {
		t.Fatal(err)
	}
	w := newTestWorker(t, spec)
	c := newTestCoordinator(t, Config{}, w)
	job := mcJob(spec, chunkSize)
	job.LocalOnly = true // degraded or fault-injected analytic runs set this
	got, err := c.MCRun(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, got, serial)
	if n := w.chunkCalls.Load(); n != 0 {
		t.Fatalf("LocalOnly job sent %d chunks to a peer", n)
	}
}

func TestAllPeersDeadDegradesToLocal(t *testing.T) {
	spec := testSpec(t, 2, 100, 21)
	const chunkSize = 20
	serial, err := montecarlo.RunSharded(context.Background(), spec, montecarlo.ShardOpts{ChunkSize: chunkSize})
	if err != nil {
		t.Fatal(err)
	}
	wa := newTestWorker(t, spec)
	wb := newTestWorker(t, spec)
	wa.killed.Store(true)
	wb.killed.Store(true)
	c := newTestCoordinator(t, Config{}, wa, wb)
	if c.HealthyPeers() != 0 || c.Ready() {
		t.Fatalf("dead peers probed healthy: %d healthy, ready=%v", c.HealthyPeers(), c.Ready())
	}
	got, err := c.MCRun(context.Background(), mcJob(spec, chunkSize))
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, got, serial)
	if st := c.Stats(); st.RemoteChunks != 0 {
		t.Fatalf("%d chunks reported remote with every peer dead", st.RemoteChunks)
	}
}

func TestHedgeRedispatchesSlowChunks(t *testing.T) {
	spec := testSpec(t, 2, 100, 31)
	const chunkSize = 25
	serial, err := montecarlo.RunSharded(context.Background(), spec, montecarlo.ShardOpts{ChunkSize: chunkSize})
	if err != nil {
		t.Fatal(err)
	}
	runChaos(t, 50, func() bool {
		slow := newTestWorker(t, spec)
		slow.slow = 400 * time.Millisecond
		cfg := Config{
			LocalWorkers:    1,
			PeerConcurrency: 1,
			HedgeAfter:      30 * time.Millisecond,
		}
		c := newTestCoordinator(t, cfg, slow)
		got, err := c.MCRun(context.Background(), mcJob(spec, chunkSize))
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, got, serial)
		if slow.chunkCalls.Load() == 0 {
			return false // the stall never claimed a chunk; go again
		}
		// A claimed chunk stalls 400ms against a 30ms hedge threshold: it
		// must have been re-dispatched, and the duplicate must have lost.
		if st := c.Stats(); st.HedgedChunks == 0 {
			t.Fatalf("400ms worker stalls never tripped the 30ms hedge: %+v", st)
		}
		return true
	})
}

func TestFingerprintMismatchIsRejectedAndStolen(t *testing.T) {
	spec := testSpec(t, 2, 100, 41)
	const chunkSize = 20
	serial, err := montecarlo.RunSharded(context.Background(), spec, montecarlo.ShardOpts{ChunkSize: chunkSize})
	if err != nil {
		t.Fatal(err)
	}
	runChaos(t, 50, func() bool {
		w := newTestWorker(t, spec)
		w.fingerprint = "model-B"
		c := newTestCoordinator(t, Config{Fingerprint: "model-A", LocalWorkers: 1}, w)
		got, err := c.MCRun(context.Background(), mcJob(spec, chunkSize))
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, got, serial)
		st := c.Stats()
		if st.RemoteChunks != 0 {
			t.Fatalf("%d chunks accepted from a worker running a different model", st.RemoteChunks)
		}
		return st.FingerprintMismatches > 0
	})
}

func TestProbeRecoveryRestoresPeer(t *testing.T) {
	w := newTestWorker(t, montecarlo.Spec{})
	w.killed.Store(true)
	c := newTestCoordinator(t, Config{}, w)
	p := c.peerByAddr(w.srv.URL)
	if p.isHealthy() {
		t.Fatal("dead worker probed healthy")
	}
	w.killed.Store(false)
	c.ProbeOnce(context.Background())
	if !p.isHealthy() {
		t.Fatal("revived worker still unhealthy after a successful probe")
	}
	if !c.Ready() {
		t.Fatal("coordinator not ready with its full peer set healthy")
	}
}

func TestBackgroundProbesFollowBackoffSchedule(t *testing.T) {
	w := newTestWorker(t, montecarlo.Spec{})
	w.killed.Store(true)
	cfg := Config{
		Peers:         []string{w.srv.URL},
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  time.Second,
		Backoff:       retry.Policy{Base: 5 * time.Millisecond, Cap: 20 * time.Millisecond, Jitter: true},
	}
	c := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c.Start(ctx)
	defer c.Stop()
	deadline := time.Now().Add(5 * time.Second)
	p := c.peerByAddr(w.srv.URL)
	for time.Now().Before(deadline) && p.isHealthy() {
		time.Sleep(2 * time.Millisecond)
	}
	if p.isHealthy() {
		t.Fatal("prober never marked the dead worker unhealthy")
	}
	w.killed.Store(false)
	for time.Now().Before(deadline) && !p.isHealthy() {
		time.Sleep(2 * time.Millisecond)
	}
	if !p.isHealthy() {
		t.Fatal("backoff prober never rediscovered the revived worker")
	}
}

func TestProxyEstimateRoundTripsReportBytes(t *testing.T) {
	rep := &core.Report{
		Name:         "typeset",
		Instructions: 1234,
		BasicBlocks:  7,
		Estimate:     &core.Estimate{LambdaMean: 2.5, LambdaStd: 0.5, TotalInsts: 1e6},
	}
	want, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var sawForwarded, sawFingerprint bool
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/estimate", func(rw http.ResponseWriter, r *http.Request) {
		sawForwarded = r.Header.Get(HeaderForwarded) != ""
		sawFingerprint = r.Header.Get(HeaderFingerprint) == "model-A"
		rw.Header().Set("Content-Type", "application/json")
		io.WriteString(rw, `{"key":"k","cached":false,"report":`+string(want)+`}`)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := New(Config{Peers: []string{srv.URL}, Fingerprint: "model-A"})
	c.ProbeOnce(context.Background())
	got, err := c.ProxyEstimate(context.Background(), srv.URL, []byte(`{"benchmark":"typeset"}`))
	if err != nil {
		t.Fatal(err)
	}
	if !sawForwarded || !sawFingerprint {
		t.Fatalf("proxy headers missing: forwarded=%v fingerprint=%v", sawForwarded, sawFingerprint)
	}
	back, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(want) {
		t.Fatalf("proxied report re-marshal diverged:\n got %s\nwant %s", back, want)
	}
	if st := c.Stats(); st.ProxiedEstimates != 1 || st.ProxyFallbacks != 0 {
		t.Fatalf("stats after clean proxy: %+v", st)
	}
}

func TestProxyEstimateFailureCountsFallback(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/estimate", func(rw http.ResponseWriter, r *http.Request) {
		rw.WriteHeader(http.StatusConflict)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := New(Config{Peers: []string{srv.URL}})
	c.ProbeOnce(context.Background())
	if _, err := c.ProxyEstimate(context.Background(), srv.URL, []byte(`{}`)); err == nil {
		t.Fatal("409 from the peer did not surface as an error")
	}
	if _, err := c.ProxyEstimate(context.Background(), "http://nowhere.invalid", nil); err == nil {
		t.Fatal("unknown peer accepted")
	}
	st := c.Stats()
	if st.ProxyFallbacks != 1 || st.FingerprintMismatches != 1 {
		t.Fatalf("stats after failed proxy: %+v", st)
	}
}
