package cluster

import (
	"context"

	"tsperr/internal/montecarlo"
)

// HTTP headers of the intra-cluster protocol.
const (
	// HeaderForwarded marks a request a coordinator routed to this node; the
	// receiver executes locally and never re-routes, so a misconfigured mesh
	// cannot forward a request in circles.
	HeaderForwarded = "X-Tsperrd-Forwarded"
	// HeaderFingerprint carries the sender's model fingerprint; the receiver
	// rejects a mismatch with 409 so results never mix across operating
	// points or cell-library revisions.
	HeaderFingerprint = "X-Tsperrd-Fingerprint"
	// HeaderChunk carries the Monte Carlo chunk index of a chunk request; the
	// fault-injection transport uses it to target faults at specific chunks.
	HeaderChunk = "X-Tsperrd-Chunk"
)

// ChunkRequest is the body of POST /v1/cluster/chunk: one Monte Carlo chunk
// of a named benchmark's validation run. The worker rebuilds the experiment
// spec from (Benchmark, Scenarios) against its own warm framework — the
// pipeline is bit-deterministic given the model fingerprint, so the rebuilt
// conditionals match the coordinator's exactly — then executes trials
// [Index*ChunkSize, min((Index+1)*ChunkSize, Trials)) with the chunk's
// derived RNG stream.
type ChunkRequest struct {
	Benchmark string `json:"benchmark"`
	Scenarios int    `json:"scenarios"`
	Trials    int    `json:"trials"`
	Seed      uint64 `json:"seed"`
	ChunkSize int    `json:"chunk_size"`
	Index     int    `json:"index"`
}

// SpecSource rebuilds the Monte Carlo spec for a benchmark's validation run:
// program, per-scenario setup, and the analytically derived conditionals.
// Trials and Seed are left zero — the chunk handler fills them from the
// request. The daemon wires harness.MCSpec; tests substitute fixtures.
type SpecSource func(ctx context.Context, benchmark string, scenarios int) (montecarlo.Spec, error)
