package cluster

import (
	"sync"
	"time"

	"tsperr/internal/montecarlo"
)

// sched is the work-stealing chunk scheduler of one distributed Monte Carlo
// run. Chunks move pending -> in flight -> delivered; a failed or suspiciously
// slow in-flight chunk is re-queued so any other runner (remote or local)
// steals it, and delivery is first-writer-wins so a hedged duplicate is
// simply dropped. Correctness never depends on who executes a chunk —
// montecarlo.RunChunk is a pure function of (spec, chunkSize, index) — so the
// scheduler is free to re-dispatch at will.
//
// A mutex + condition variable (rather than a channel pipeline) keeps
// unbounded re-queueing deadlock-free: requeue never blocks, and every state
// change that could unblock a runner broadcasts.
type sched struct {
	mu   sync.Mutex
	cond *sync.Cond
	// queue holds pending chunk indices; guarded by mu. An index may appear
	// more than once after a hedge — next skips already-delivered entries.
	queue []int
	// delivered marks chunks with an accepted result; guarded by mu.
	delivered []bool
	// started records when each in-flight chunk was last handed out (zero
	// when not in flight); guarded by mu.
	started []time.Time
	// results holds the accepted chunk results; guarded by mu.
	results []montecarlo.ChunkResult
	// remaining counts undelivered chunks; guarded by mu.
	remaining int
	// err is the first fatal error (local execution failure or context
	// cancellation); guarded by mu.
	err error
}

func newSched(n int) *sched {
	queue := make([]int, n)
	for c := range queue {
		queue[c] = c
	}
	s := &sched{
		queue:     queue,
		delivered: make([]bool, n),
		started:   make([]time.Time, n),
		results:   make([]montecarlo.ChunkResult, n),
		remaining: n,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// next blocks until a chunk is available, handing it out, or the run is over
// (all delivered or fatally failed), returning ok == false.
func (s *sched) next() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.err != nil || s.remaining == 0 {
			return 0, false
		}
		for len(s.queue) > 0 {
			c := s.queue[0]
			s.queue = s.queue[1:]
			if s.delivered[c] {
				continue
			}
			s.started[c] = time.Now()
			return c, true
		}
		s.cond.Wait()
	}
}

// requeue returns an undelivered chunk to the pending queue — the
// work-stealing path after a remote failure. It reports whether the chunk was
// actually re-queued (false when a hedged twin already delivered it).
func (s *sched) requeue(c int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.delivered[c] {
		return false
	}
	s.started[c] = time.Time{}
	s.queue = append(s.queue, c)
	s.cond.Broadcast()
	return true
}

// deliver accepts a chunk result, first writer wins. The duplicate from a
// hedged re-dispatch is dropped (returns false).
func (s *sched) deliver(c int, res montecarlo.ChunkResult) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.delivered[c] {
		return false
	}
	s.delivered[c] = true
	s.results[c] = res
	s.remaining--
	if s.remaining == 0 {
		s.cond.Broadcast()
	}
	return true
}

// fail records a fatal error and releases every blocked runner. Once all
// chunks have been delivered the run's outcome is settled, so a late
// cancellation (the caller tearing down its context watcher) is ignored.
func (s *sched) fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil || s.remaining == 0 || err == nil {
		return
	}
	s.err = err
	s.cond.Broadcast()
}

// hedge re-queues every chunk that has been in flight longer than after,
// resetting its clock so one slow chunk is not re-dispatched on every sweep.
// It returns how many chunks were hedged.
func (s *sched) hedge(after time.Duration) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	now := time.Now()
	for c := range s.started {
		if s.delivered[c] || s.started[c].IsZero() {
			continue
		}
		if now.Sub(s.started[c]) < after {
			continue
		}
		s.started[c] = now
		s.queue = append(s.queue, c)
		n++
	}
	if n > 0 {
		s.cond.Broadcast()
	}
	return n
}

// outcome returns the accepted results, or the fatal error. Fatal beats
// complete only when chunks are still missing.
func (s *sched) outcome() ([]montecarlo.ChunkResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.remaining == 0 {
		return s.results, nil
	}
	return nil, s.err
}
