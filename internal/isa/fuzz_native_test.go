package isa

import (
	"strings"
	"testing"
)

// FuzzAssemble is a native fuzz target: the assembler must never panic, and
// any program it accepts must disassemble without panicking either.
// Run with: go test -fuzz FuzzAssemble ./internal/isa
func FuzzAssemble(f *testing.F) {
	f.Add("li r1, 5\nhalt\n")
	f.Add("loop: addi r1, r1, -1\nbne r1, r0, loop\nhalt\n")
	f.Add("lw r1, 8(r2)\nsw r1, (r3)\n")
	f.Add("x: y: nop")
	f.Add("jal r31, nowhere")
	f.Add("add r1, r2")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz", src)
		if err != nil {
			if !strings.Contains(err.Error(), "fuzz") {
				t.Errorf("error does not carry the program name: %v", err)
			}
			return
		}
		for _, in := range p.Insts {
			_ = in.String()
			_ = in.Encode()
		}
	})
}
