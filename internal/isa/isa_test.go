package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAssembleBasicProgram(t *testing.T) {
	src := `
		# count down from 5
		li   r1, 5
		li   r2, 0
	loop:
		add  r2, r2, r1
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`
	p, err := Assemble("countdown", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 6 {
		t.Fatalf("expected 6 instructions, got %d", len(p.Insts))
	}
	if p.Labels["loop"] != 2 {
		t.Errorf("loop label at %d", p.Labels["loop"])
	}
	br := p.Insts[4]
	if br.Op != OpBne || br.Target != 2 || br.Label != "loop" {
		t.Errorf("branch not resolved: %+v", br)
	}
}

func TestAssembleLiExpansion(t *testing.T) {
	p, err := Assemble("li", "li r3, 0x12345678\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) != 3 {
		t.Fatalf("wide li should expand to 2 instructions, got %d", len(p.Insts)-1)
	}
	if p.Insts[0].Op != OpLui || p.Insts[1].Op != OpOri {
		t.Errorf("expansion = %v %v", p.Insts[0].Op, p.Insts[1].Op)
	}
	if p.Insts[0].Imm != 0x1234 || p.Insts[1].Imm != 0x5678 {
		t.Errorf("imm split wrong: %x %x", p.Insts[0].Imm, p.Insts[1].Imm)
	}
	p2, _ := Assemble("li2", "li r3, -7\nhalt\n")
	if p2.Insts[0].Op != OpAddi || p2.Insts[0].Imm != -7 {
		t.Error("narrow li should be a single addi")
	}
}

func TestAssembleMemOperands(t *testing.T) {
	p, err := Assemble("mem", "lw r1, 8(r2)\nsw r1, (r3)\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	lw := p.Insts[0]
	if lw.Op != OpLw || lw.Rd != 1 || lw.Rs1 != 2 || lw.Imm != 8 {
		t.Errorf("lw parsed wrong: %+v", lw)
	}
	sw := p.Insts[1]
	if sw.Op != OpSw || sw.Rs2 != 1 || sw.Rs1 != 3 || sw.Imm != 0 {
		t.Errorf("sw parsed wrong: %+v", sw)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		"add r1, r2",             // wrong arity
		"add r1, r2, r99",        // bad register
		"beq r1, r2, none\nhalt", // undefined label
		"x: x: nop",              // malformed double label on one line
		"lw r1, r2",              // bad mem operand
		"",                       // empty program
	}
	for _, src := range cases {
		if _, err := Assemble("bad", src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestDuplicateLabel(t *testing.T) {
	_, err := Assemble("dup", "a:\nnop\na:\nnop\n")
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("expected duplicate label error, got %v", err)
	}
}

func TestReadWriteSets(t *testing.T) {
	cases := []struct {
		in             Inst
		rs1, rs2, wrRd bool
	}{
		{Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, true, true, true},
		{Inst{Op: OpAdd, Rd: 0, Rs1: 2, Rs2: 3}, true, true, false}, // r0 sink
		{Inst{Op: OpAddi, Rd: 1, Rs1: 2}, true, false, true},
		{Inst{Op: OpLw, Rd: 1, Rs1: 2}, true, false, true},
		{Inst{Op: OpSw, Rs1: 2, Rs2: 3}, true, true, false},
		{Inst{Op: OpBeq, Rs1: 1, Rs2: 2}, true, true, false},
		{Inst{Op: OpJal, Rd: 31}, false, false, true},
		{Inst{Op: OpJr, Rs1: 31}, true, false, false},
		{Inst{Op: OpNop}, false, false, false},
		{Inst{Op: OpHalt}, false, false, false},
		{Inst{Op: OpLui, Rd: 5}, false, false, true},
	}
	for _, c := range cases {
		if c.in.ReadsRs1() != c.rs1 {
			t.Errorf("%v ReadsRs1 = %v", c.in, c.in.ReadsRs1())
		}
		if c.in.ReadsRs2() != c.rs2 {
			t.Errorf("%v ReadsRs2 = %v", c.in, c.in.ReadsRs2())
		}
		if c.in.WritesRd() != c.wrRd {
			t.Errorf("%v WritesRd = %v", c.in, c.in.WritesRd())
		}
	}
}

func TestEncodeDistinguishesOps(t *testing.T) {
	a := Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}.Encode()
	b := Inst{Op: OpSub, Rd: 1, Rs1: 2, Rs2: 3}.Encode()
	if a == b {
		t.Error("different ops must encode differently")
	}
	if a>>26 != uint32(OpAdd) {
		t.Errorf("opcode field wrong: %x", a)
	}
}

func TestEncodeFieldsProperty(t *testing.T) {
	f := func(rd, rs1, rs2 uint8, imm int16) bool {
		in := Inst{Op: OpAddi, Rd: rd % 32, Rs1: rs1 % 32, Imm: int32(imm)}
		w := in.Encode()
		return w>>26 == uint32(OpAddi) &&
			(w>>21)&31 == uint32(in.Rd) &&
			(w>>16)&31 == uint32(in.Rs1) &&
			uint16(w) == uint16(imm)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisassemblyRoundTripish(t *testing.T) {
	src := `
	start:
		addi r1, r0, 10
		lw   r2, 4(r1)
		sw   r2, 8(r1)
		beq  r1, r2, start
		jal  r31, start
		jr   r31
		sll  r3, r1, r2
		lui  r4, 18
		halt
	`
	p, err := Assemble("dis", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range p.Insts {
		s := in.String()
		if s == "" {
			t.Errorf("empty disassembly for %+v", in)
		}
	}
	// Spot checks.
	if got := p.Insts[1].String(); got != "lw r2, 4(r1)" {
		t.Errorf("lw disassembly = %q", got)
	}
	if got := p.Insts[3].String(); got != "beq r1, r2, start" {
		t.Errorf("beq disassembly = %q", got)
	}
}

func TestPseudoInstructions(t *testing.T) {
	p, err := Assemble("pseudo", "mv r5, r6\nj end\nend: halt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Insts[0].Op != OpAdd || p.Insts[0].Rs2 != 0 || p.Insts[0].Rd != 5 {
		t.Error("mv should expand to add rd, rs, r0")
	}
	if p.Insts[1].Op != OpJal || p.Insts[1].Rd != 0 || p.Insts[1].Target != 2 {
		t.Error("j should expand to jal r0")
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble should panic on bad source")
		}
	}()
	MustAssemble("bad", "florble r1")
}
