// Package isa defines TS-V8, the small SPARC-V8-flavoured in-order RISC
// instruction set the benchmark kernels are written in: 32 general-purpose
// registers (r0 hardwired to zero), 32-bit words, ALU/shift/compare
// operations with register and immediate forms, loads/stores, conditional
// branches, and jumps. It provides a two-pass assembler, a disassembler, and
// the 32-bit binary encoding whose bits feed the decoder netlist.
package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Op enumerates the operations.
type Op uint8

// Operations. Keep OpNop first so the zero Inst is a nop.
const (
	OpNop Op = iota
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpSlt
	OpMul
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai
	OpSlti
	OpLui
	OpLw
	OpSw
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpJal
	OpJr
	OpHalt
	NumOps
)

var opNames = [NumOps]string{
	"nop", "add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt",
	"mul", "addi", "andi", "ori", "xori", "slli", "srli", "srai", "slti",
	"lui", "lw", "sw", "beq", "bne", "blt", "bge", "jal", "jr", "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Format classes.

// IsRType reports register-register ALU form.
func (o Op) IsRType() bool { return o >= OpAdd && o <= OpMul }

// IsIType reports register-immediate ALU form (including lui).
func (o Op) IsIType() bool { return o >= OpAddi && o <= OpLui }

// IsLoad reports a memory load.
func (o Op) IsLoad() bool { return o == OpLw }

// IsStore reports a memory store.
func (o Op) IsStore() bool { return o == OpSw }

// IsMem reports any memory operation.
func (o Op) IsMem() bool { return o.IsLoad() || o.IsStore() }

// IsBranch reports a conditional branch.
func (o Op) IsBranch() bool { return o >= OpBeq && o <= OpBge }

// IsJump reports an unconditional control transfer.
func (o Op) IsJump() bool { return o == OpJal || o == OpJr }

// IsControl reports any control-flow instruction.
func (o Op) IsControl() bool { return o.IsBranch() || o.IsJump() || o == OpHalt }

// Inst is one decoded instruction. Branch and jump targets are resolved to
// absolute instruction indices by the assembler.
type Inst struct {
	Op           Op
	Rd, Rs1, Rs2 uint8
	Imm          int32
	Target       int    // resolved control-flow target (instruction index)
	Label        string // original label text, kept for disassembly
}

// ReadsRs2 reports whether the instruction consumes Rs2.
func (in Inst) ReadsRs2() bool {
	return in.Op.IsRType() || in.Op.IsBranch() || in.Op == OpSw
}

// ReadsRs1 reports whether the instruction consumes Rs1.
func (in Inst) ReadsRs1() bool {
	switch in.Op {
	case OpNop, OpHalt, OpLui, OpJal:
		return false
	}
	return true
}

// WritesRd reports whether the instruction produces a register result.
func (in Inst) WritesRd() bool {
	switch {
	case in.Op.IsRType(), in.Op.IsIType(), in.Op == OpLw, in.Op == OpJal:
		return in.Rd != 0
	}
	return false
}

// Encode packs the instruction into its 32-bit machine form:
// opcode[31:26] rd[25:21] rs1[20:16] rs2[15:11] | imm16[15:0].
// Branch/jump targets are encoded as their low 16 bits; the simulator uses
// the resolved Target field, while the decoder netlist only cares about the
// bit pattern.
func (in Inst) Encode() uint32 {
	w := uint32(in.Op) << 26
	w |= uint32(in.Rd&31) << 21
	w |= uint32(in.Rs1&31) << 16
	if in.Op.IsRType() {
		w |= uint32(in.Rs2&31) << 11
	} else if in.Op.IsBranch() || in.Op == OpSw {
		w |= uint32(in.Rs2&31) << 11
		w |= uint32(uint16(in.Imm)) & 0x7FF // truncated displacement
	} else {
		w |= uint32(uint16(in.Imm))
	}
	return w
}

// String disassembles the instruction.
func (in Inst) String() string {
	switch {
	case in.Op == OpNop || in.Op == OpHalt:
		return in.Op.String()
	case in.Op.IsRType():
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case in.Op == OpLui:
		return fmt.Sprintf("%s r%d, %d", in.Op, in.Rd, in.Imm)
	case in.Op.IsIType():
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case in.Op == OpLw:
		return fmt.Sprintf("lw r%d, %d(r%d)", in.Rd, in.Imm, in.Rs1)
	case in.Op == OpSw:
		return fmt.Sprintf("sw r%d, %d(r%d)", in.Rs2, in.Imm, in.Rs1)
	case in.Op.IsBranch():
		return fmt.Sprintf("%s r%d, r%d, %s", in.Op, in.Rs1, in.Rs2, in.targetStr())
	case in.Op == OpJal:
		return fmt.Sprintf("jal r%d, %s", in.Rd, in.targetStr())
	case in.Op == OpJr:
		return fmt.Sprintf("jr r%d", in.Rs1)
	}
	return in.Op.String()
}

func (in Inst) targetStr() string {
	if in.Label != "" {
		return in.Label
	}
	return strconv.Itoa(in.Target)
}

// Program is an assembled program.
type Program struct {
	Name   string
	Insts  []Inst
	Labels map[string]int
}

// Assemble parses TS-V8 assembly source. Lines contain an optional
// "label:" prefix, an instruction, and optional "#" or ";" comments.
// "li rd, imm32" is accepted as a pseudo-instruction and expands to
// lui+ori when the value does not fit in 16 signed bits.
func Assemble(name, src string) (*Program, error) {
	p := &Program{Name: name, Labels: map[string]int{}}
	type pending struct {
		inst  int
		label string
		line  int
	}
	var fixups []pending

	lines := strings.Split(src, "\n")
	for lineNo, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if label == "" || strings.ContainsAny(label, " \t,()") {
				return nil, fmt.Errorf("%s:%d: malformed label %q", name, lineNo+1, label)
			}
			if _, dup := p.Labels[label]; dup {
				return nil, fmt.Errorf("%s:%d: duplicate label %q", name, lineNo+1, label)
			}
			p.Labels[label] = len(p.Insts)
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		insts, fix, err := parseInst(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", name, lineNo+1, err)
		}
		for _, in := range insts {
			if fix != "" && in.Op.IsControl() && in.Op != OpJr && in.Op != OpHalt {
				fixups = append(fixups, pending{inst: len(p.Insts), label: fix, line: lineNo + 1})
			}
			p.Insts = append(p.Insts, in)
		}
	}
	for _, f := range fixups {
		target, ok := p.Labels[f.label]
		if !ok {
			return nil, fmt.Errorf("%s:%d: undefined label %q", name, f.line, f.label)
		}
		p.Insts[f.inst].Target = target
		p.Insts[f.inst].Label = f.label
	}
	if len(p.Insts) == 0 {
		return nil, fmt.Errorf("%s: empty program", name)
	}
	return p, nil
}

// MustAssemble assembles or panics; intended for compiled-in kernels that are
// covered by tests.
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func parseReg(tok string) (uint8, error) {
	tok = strings.TrimSpace(tok)
	if len(tok) < 2 || (tok[0] != 'r' && tok[0] != 'R') {
		return 0, fmt.Errorf("bad register %q", tok)
	}
	v, err := strconv.Atoi(tok[1:])
	if err != nil || v < 0 || v > 31 {
		return 0, fmt.Errorf("bad register %q", tok)
	}
	return uint8(v), nil
}

func parseImm(tok string) (int32, error) {
	tok = strings.TrimSpace(tok)
	v, err := strconv.ParseInt(tok, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", tok)
	}
	if v < -(1<<31) || v > (1<<31)-1 {
		return 0, fmt.Errorf("immediate %q out of 32-bit range", tok)
	}
	return int32(v), nil
}

// parseInst returns the expanded instructions, plus a label fixup if the
// instruction references one.
func parseInst(line string) ([]Inst, string, error) {
	fields := strings.SplitN(line, " ", 2)
	mnemonic := strings.ToLower(strings.TrimSpace(fields[0]))
	rest := ""
	if len(fields) > 1 {
		rest = strings.TrimSpace(fields[1])
	}
	args := []string{}
	if rest != "" {
		for _, a := range strings.Split(rest, ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s expects %d operands, got %d", mnemonic, n, len(args))
		}
		return nil
	}

	switch mnemonic {
	case "nop":
		return []Inst{{Op: OpNop}}, "", nil
	case "halt":
		return []Inst{{Op: OpHalt}}, "", nil
	case "li": // pseudo
		if err := need(2); err != nil {
			return nil, "", err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return nil, "", err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return nil, "", err
		}
		if imm >= -32768 && imm <= 32767 {
			return []Inst{{Op: OpAddi, Rd: rd, Rs1: 0, Imm: imm}}, "", nil
		}
		hi := imm >> 16
		lo := imm & 0xFFFF
		return []Inst{
			{Op: OpLui, Rd: rd, Imm: hi},
			{Op: OpOri, Rd: rd, Rs1: rd, Imm: lo},
		}, "", nil
	case "mv": // pseudo: mv rd, rs
		if err := need(2); err != nil {
			return nil, "", err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return nil, "", err
		}
		rs, err := parseReg(args[1])
		if err != nil {
			return nil, "", err
		}
		return []Inst{{Op: OpAdd, Rd: rd, Rs1: rs, Rs2: 0}}, "", nil
	case "jr":
		if err := need(1); err != nil {
			return nil, "", err
		}
		rs, err := parseReg(args[0])
		if err != nil {
			return nil, "", err
		}
		return []Inst{{Op: OpJr, Rs1: rs}}, "", nil
	case "jal":
		if err := need(2); err != nil {
			return nil, "", err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return nil, "", err
		}
		return []Inst{{Op: OpJal, Rd: rd}}, args[1], nil
	case "j": // pseudo: j label == jal r0, label
		if err := need(1); err != nil {
			return nil, "", err
		}
		return []Inst{{Op: OpJal, Rd: 0}}, args[0], nil
	case "lw":
		if err := need(2); err != nil {
			return nil, "", err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return nil, "", err
		}
		base, off, err := parseMemOperand(args[1])
		if err != nil {
			return nil, "", err
		}
		return []Inst{{Op: OpLw, Rd: rd, Rs1: base, Imm: off}}, "", nil
	case "sw":
		if err := need(2); err != nil {
			return nil, "", err
		}
		rs2, err := parseReg(args[0])
		if err != nil {
			return nil, "", err
		}
		base, off, err := parseMemOperand(args[1])
		if err != nil {
			return nil, "", err
		}
		return []Inst{{Op: OpSw, Rs2: rs2, Rs1: base, Imm: off}}, "", nil
	case "lui":
		if err := need(2); err != nil {
			return nil, "", err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return nil, "", err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return nil, "", err
		}
		return []Inst{{Op: OpLui, Rd: rd, Imm: imm}}, "", nil
	}

	// Branches: op rs1, rs2, label.
	for op := OpBeq; op <= OpBge; op++ {
		if mnemonic == op.String() {
			if err := need(3); err != nil {
				return nil, "", err
			}
			rs1, err := parseReg(args[0])
			if err != nil {
				return nil, "", err
			}
			rs2, err := parseReg(args[1])
			if err != nil {
				return nil, "", err
			}
			return []Inst{{Op: op, Rs1: rs1, Rs2: rs2}}, args[2], nil
		}
	}
	// R-type: op rd, rs1, rs2.
	for op := OpAdd; op <= OpMul; op++ {
		if mnemonic == op.String() {
			if err := need(3); err != nil {
				return nil, "", err
			}
			rd, err := parseReg(args[0])
			if err != nil {
				return nil, "", err
			}
			rs1, err := parseReg(args[1])
			if err != nil {
				return nil, "", err
			}
			rs2, err := parseReg(args[2])
			if err != nil {
				return nil, "", err
			}
			return []Inst{{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}}, "", nil
		}
	}
	// I-type: op rd, rs1, imm.
	for op := OpAddi; op <= OpSlti; op++ {
		if mnemonic == op.String() {
			if err := need(3); err != nil {
				return nil, "", err
			}
			rd, err := parseReg(args[0])
			if err != nil {
				return nil, "", err
			}
			rs1, err := parseReg(args[1])
			if err != nil {
				return nil, "", err
			}
			imm, err := parseImm(args[2])
			if err != nil {
				return nil, "", err
			}
			return []Inst{{Op: op, Rd: rd, Rs1: rs1, Imm: imm}}, "", nil
		}
	}
	return nil, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
}

// parseMemOperand parses "off(rBase)".
func parseMemOperand(s string) (base uint8, off int32, err error) {
	open := strings.Index(s, "(")
	close := strings.LastIndex(s, ")")
	if open < 0 || close < open {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		offStr = "0"
	}
	off, err = parseImm(offStr)
	if err != nil {
		return 0, 0, err
	}
	base, err = parseReg(s[open+1 : close])
	return base, off, err
}
