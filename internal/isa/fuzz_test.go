package isa

import (
	"strings"
	"testing"
	"testing/quick"

	"tsperr/internal/numeric"
)

// TestAssembleNeverPanics feeds random garbage to the assembler: it must
// return an error or a program, never panic.
func TestAssembleNeverPanics(t *testing.T) {
	rng := numeric.NewRNG(123)
	alphabet := "abcdefghijklmnopqrstuvwxyz0123456789 ,()-#:;\tr\n"
	f := func(seed uint32) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		n := int(seed%200) + 1
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		_, _ = Assemble("fuzz", sb.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestAssembleMutatedValidSources mutates a valid program and checks the
// assembler either accepts the result or reports a located error.
func TestAssembleMutatedValidSources(t *testing.T) {
	base := `
	li r1, 10
loop:
	addi r1, r1, -1
	bne r1, r0, loop
	halt
`
	rng := numeric.NewRNG(7)
	for i := 0; i < 300; i++ {
		b := []byte(base)
		pos := rng.Intn(len(b))
		b[pos] = byte(33 + rng.Intn(90))
		_, err := Assemble("mut", string(b))
		if err != nil && !strings.Contains(err.Error(), "mut:") {
			t.Fatalf("error without location: %v", err)
		}
	}
}

// TestEncodeTotal ensures Encode is total over all op/field combinations.
func TestEncodeTotal(t *testing.T) {
	for op := Op(0); op < NumOps; op++ {
		in := Inst{Op: op, Rd: 31, Rs1: 31, Rs2: 31, Imm: -1}
		_ = in.Encode()
		_ = in.String()
	}
}
