package retry_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"tsperr/internal/numeric"
	"tsperr/internal/retry"
)

func TestDelaySchedule(t *testing.T) {
	p := retry.Policy{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, 80 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Delay(i+1, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := p.Delay(0, nil); got != 0 {
		t.Errorf("Delay(0) = %v, want 0", got)
	}
}

func TestDelayDisabledAndUncapped(t *testing.T) {
	if d := (retry.Policy{Base: 0}).Delay(3, nil); d != 0 {
		t.Errorf("zero base: Delay = %v, want 0", d)
	}
	if d := (retry.Policy{Base: -time.Second}).Delay(1, nil); d != 0 {
		t.Errorf("negative base: Delay = %v, want 0", d)
	}
	// Uncapped schedules must survive the shift overflowing int64.
	p := retry.Policy{Base: time.Hour}
	if d := p.Delay(80, nil); d <= 0 {
		t.Errorf("overflowed delay = %v, want positive clamp", d)
	}
	// Capped schedules clamp the same overflow to the cap.
	p.Cap = time.Minute
	if d := p.Delay(80, nil); d != time.Minute {
		t.Errorf("capped overflow delay = %v, want 1m", d)
	}
}

func TestJitterBounds(t *testing.T) {
	p := retry.Policy{Base: 100 * time.Millisecond, Cap: time.Second, Jitter: true}
	rng := numeric.NewRNG(7)
	for n := 1; n <= 6; n++ {
		exp := retry.Policy{Base: p.Base, Cap: p.Cap}.Delay(n, nil)
		for i := 0; i < 200; i++ {
			d := p.Delay(n, rng)
			if d < 0 || d >= exp {
				t.Fatalf("attempt %d: jittered delay %v outside [0, %v)", n, d, exp)
			}
		}
	}
	// The draw must actually spread: a degenerate jitter that always returns
	// the same value defeats decorrelation.
	seen := map[time.Duration]bool{}
	for i := 0; i < 50; i++ {
		seen[p.Delay(3, rng)] = true
	}
	if len(seen) < 25 {
		t.Errorf("only %d distinct jittered delays in 50 draws", len(seen))
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	p := retry.Policy{Base: 5 * time.Millisecond, Cap: time.Second, Jitter: true}
	a := retry.NewBackoff(p, 42)
	b := retry.NewBackoff(p, 42)
	for i := 0; i < 10; i++ {
		if da, db := a.Next(), b.Next(); da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i+1, da, db)
		}
	}
	c := retry.NewBackoff(p, 43)
	same := 0
	a = retry.NewBackoff(p, 42)
	for i := 0; i < 10; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same == 10 {
		t.Error("different seeds replayed the identical schedule")
	}
}

// TestBackoffScheduleWithFakeClock pins the whole schedule through a
// recording sleeper — the deterministic-clock path the cluster prober uses.
func TestBackoffScheduleWithFakeClock(t *testing.T) {
	b := retry.NewBackoff(retry.Policy{Base: time.Millisecond, Cap: 4 * time.Millisecond}, 0)
	var slept []time.Duration
	b.SetSleep(func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	})
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := b.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (schedule %v)", i, slept[i], want[i], slept)
		}
	}
	if b.Attempt() != 4 {
		t.Errorf("Attempt = %d, want 4", b.Attempt())
	}
	b.Reset()
	if err := b.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if slept[len(slept)-1] != time.Millisecond {
		t.Errorf("post-Reset sleep = %v, want base again", slept[len(slept)-1])
	}
}

func TestSleepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := retry.Sleep(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("dead ctx, zero delay: err = %v, want Canceled", err)
	}
	if err := retry.Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Errorf("dead ctx: err = %v, want Canceled", err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- retry.Sleep(ctx2, time.Hour) }()
	cancel2()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("mid-sleep cancel: err = %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return after cancellation")
	}

	if err := retry.Sleep(context.Background(), -time.Second); err != nil {
		t.Errorf("negative delay: err = %v, want nil", err)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	err := retry.Do(context.Background(), retry.Policy{}, 0, 5, func(n int) error {
		calls++
		if n != calls {
			t.Fatalf("attempt number %d, want %d", n, calls)
		}
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d; want success on attempt 3", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := retry.Do(context.Background(), retry.Policy{}, 0, 3, func(int) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 3 {
		t.Fatalf("err = %v, calls = %d; want boom after 3 attempts", err, calls)
	}
}

func TestDoContextErrorIsTerminal(t *testing.T) {
	calls := 0
	err := retry.Do(context.Background(), retry.Policy{}, 0, 5, func(int) error {
		calls++
		return context.DeadlineExceeded
	})
	if !errors.Is(err, context.DeadlineExceeded) || calls != 1 {
		t.Fatalf("err = %v, calls = %d; want immediate stop on deadline", err, calls)
	}

	// A wrapped cancellation is just as terminal.
	calls = 0
	wrapped := errors.Join(errors.New("scenario 3 failed"), context.Canceled)
	err = retry.Do(context.Background(), retry.Policy{}, 0, 5, func(int) error {
		calls++
		return wrapped
	})
	if !errors.Is(err, context.Canceled) || calls != 1 {
		t.Fatalf("err = %v, calls = %d; want immediate stop on wrapped cancel", err, calls)
	}
}

func TestDoCancelledDuringBackoff(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	go func() {
		// Let the first attempt fail, then cancel while Do sleeps.
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := retry.Do(ctx, retry.Policy{Base: time.Hour}, 0, 5, func(int) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want boom joined with Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry after cancelled backoff)", calls)
	}
}

func TestDelayOverflowNeverNegative(t *testing.T) {
	p := retry.Policy{Base: time.Duration(math.MaxInt64 / 2)}
	for n := 1; n < 10; n++ {
		if d := p.Delay(n, nil); d < 0 {
			t.Fatalf("Delay(%d) = %v went negative", n, d)
		}
	}
}
