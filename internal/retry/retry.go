// Package retry provides capped exponential backoff with optional full
// jitter, shared by the scenario retry loop (internal/core) and the cluster
// layer's peer probing and chunk re-dispatch (internal/cluster). The delay
// schedule is a pure function of the policy (Policy.Delay), jitter randomness
// comes from an injectable deterministic RNG, and sleeping goes through a
// substitutable context-aware primitive — so tests assert exact schedules
// without a real clock.
package retry

import (
	"context"
	"errors"
	"math"
	"time"

	"tsperr/internal/numeric"
)

// Policy describes a capped exponential backoff schedule.
type Policy struct {
	// Base is the pre-jitter delay before the first retry; it doubles per
	// attempt. Zero or negative disables delays entirely (every Delay is 0).
	Base time.Duration
	// Cap bounds every delay; the doubling clamps here, as does arithmetic
	// overflow. Zero means uncapped.
	Cap time.Duration
	// Jitter, when set, draws each delay uniformly from [0, d) — "full
	// jitter" — so concurrent retriers decorrelate instead of thundering
	// back against a recovering peer in lockstep.
	Jitter bool
}

// Delay returns the backoff before retry n (1-based). rng supplies the
// jitter draw and may be nil when Jitter is unset; with Jitter set and a nil
// rng the un-jittered delay is returned.
func (p Policy) Delay(n int, rng *numeric.RNG) time.Duration {
	if p.Base <= 0 || n < 1 {
		return 0
	}
	d := p.Base
	for i := 1; i < n; i++ {
		d <<= 1
		if d <= 0 { // overflow
			d = time.Duration(math.MaxInt64)
			break
		}
		if p.Cap > 0 && d >= p.Cap {
			break
		}
	}
	if p.Cap > 0 && d > p.Cap {
		d = p.Cap
	}
	if p.Jitter && rng != nil && d > 0 {
		d = time.Duration(rng.Float64() * float64(d))
	}
	return d
}

// Sleep blocks for d or until ctx is done, whichever comes first, returning
// ctx.Err() when cancelled and nil otherwise. A non-positive d returns after
// the cancellation check alone, so disabled backoff still honors a dead
// context.
func Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SleepFn matches Sleep; tests substitute a recording fake so whole backoff
// schedules are asserted deterministically.
type SleepFn func(ctx context.Context, d time.Duration) error

// Backoff iterates one Policy schedule with its own jitter stream. It is not
// safe for concurrent use; give each retrying goroutine its own iterator.
type Backoff struct {
	policy Policy
	rng    *numeric.RNG
	n      int
	sleep  SleepFn
}

// NewBackoff starts a backoff iterator. seed feeds the jitter RNG, so a fixed
// seed replays the exact delay schedule (peers seed with a hash of their
// address: reproducible per peer, decorrelated across peers).
func NewBackoff(p Policy, seed uint64) *Backoff {
	return &Backoff{policy: p, rng: numeric.NewRNG(seed), sleep: Sleep}
}

// SetSleep substitutes the sleeping primitive (tests).
func (b *Backoff) SetSleep(fn SleepFn) { b.sleep = fn }

// Attempt reports how many delays the schedule has issued since the last
// Reset.
func (b *Backoff) Attempt() int { return b.n }

// Reset rewinds the schedule to the first delay; callers invoke it after a
// success so the next failure starts the ramp from Base again.
func (b *Backoff) Reset() { b.n = 0 }

// Next returns the upcoming delay and advances the schedule.
func (b *Backoff) Next() time.Duration {
	b.n++
	return b.policy.Delay(b.n, b.rng)
}

// Wait sleeps for the next delay in the schedule, honoring ctx.
func (b *Backoff) Wait(ctx context.Context) error {
	return b.sleep(ctx, b.Next())
}

// Do runs fn up to attempts times (the first try plus attempts-1 retries),
// sleeping the policy's backoff between failures. A context cancellation or
// deadline expiry — whether observed on ctx or wrapped inside fn's error —
// stops the loop immediately; retrying cancelled work only delays shutdown.
// The returned error is fn's last error, joined with the context error when
// the backoff sleep was interrupted. seed feeds the jitter stream.
func Do(ctx context.Context, p Policy, seed uint64, attempts int, fn func(attempt int) error) error {
	b := NewBackoff(p, seed)
	for n := 1; ; n++ {
		err := fn(n)
		if err == nil {
			return nil
		}
		if n >= attempts || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		if serr := b.Wait(ctx); serr != nil {
			return errors.Join(err, serr)
		}
	}
}
