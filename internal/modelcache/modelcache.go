// Package modelcache persists the once-per-design training results — the
// calibrated per-unit delay scales and the trained datapath timing model —
// in a content-addressed on-disk cache, so repeated tool invocations at the
// same operating point skip SSTA calibration and datapath training entirely.
//
// The cache is content-addressed: the key is a hash of the schema version,
// the full errormodel.Options, and the cell-library fingerprint. Anything
// that could change the trained model changes the key, so stale entries are
// never served; they are simply orphaned (and a mismatching or corrupt file
// under the expected name is deleted and reported as a miss). Netlists are
// not serialized — they regenerate deterministically from the generators —
// which keeps snapshots small and sidesteps the unexported graph internals.
//
// Writes are atomic (temp file + rename in the same directory), so a crashed
// or concurrent writer can never leave a half-written snapshot visible to
// readers, and concurrent writers of the same key simply race to publish
// identical bytes.
package modelcache

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"tsperr/internal/errormodel"
)

// SchemaVersion invalidates every cached snapshot when the serialized layout
// or the meaning of the trained tables changes. Bump it on any change to
// Snapshot, DatapathModel, or the training flow itself.
const SchemaVersion = 1

// Snapshot is the serializable result of the machine-dependent training
// phase: everything NewFrameworkCached needs to rebuild a Framework without
// calibrating or training.
type Snapshot struct {
	// Schema and Key echo the cache metadata for self-validation on load.
	Schema int
	Key    string
	// Scales are the calibrated per-unit delay scales by netlist name
	// (errormodel.Machine.Scales), the input of NewMachineWithScales.
	Scales map[string]float64
	// Datapath is the trained per-depth DTS table set.
	Datapath *errormodel.DatapathModel
}

// Key derives the content address of a model snapshot from the operating
// point options and the cell-library fingerprint. %+v over Options is stable
// for a fixed struct definition, and any field addition changes the rendered
// string (and therefore the key), which is exactly the invalidation we want.
func Key(opts errormodel.Options, libFingerprint string) string {
	// The zero condition means "nominal": normalize before hashing so a
	// machine characterized with an explicit 1.1 V / 25 C shares its snapshot
	// with the default, while any real droop or heat gets its own key.
	opts.Cond = opts.Cond.Norm()
	h := sha256.New()
	fmt.Fprintf(h, "schema=%d\nopts=%+v\nlib=%s\n", SchemaVersion, opts, libFingerprint)
	return hex.EncodeToString(h.Sum(nil))
}

// Path returns the snapshot file for a key inside dir.
func Path(dir, key string) string {
	return filepath.Join(dir, "model-"+key+".gob")
}

// DefaultDir returns the per-user cache directory for model snapshots.
func DefaultDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("modelcache: no user cache dir: %w", err)
	}
	return filepath.Join(base, "tsperr"), nil
}

// Save atomically writes a snapshot under its key, creating dir as needed.
// The snapshot's Schema and Key fields are stamped here.
func Save(dir, key string, snap *Snapshot) error {
	if snap == nil || snap.Scales == nil || snap.Datapath == nil {
		return fmt.Errorf("modelcache: incomplete snapshot")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("modelcache: %w", err)
	}
	snap.Schema = SchemaVersion
	snap.Key = key
	tmp, err := os.CreateTemp(dir, "model-*.tmp")
	if err != nil {
		return fmt.Errorf("modelcache: %w", err)
	}
	if err := gob.NewEncoder(tmp).Encode(snap); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("modelcache: encoding snapshot: %w", err)
	}
	// Flush to stable storage before publishing: without it a crash between
	// the rename and the kernel writeback could expose an empty or truncated
	// file under the final name, which every later process would then treat
	// as corruption.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("modelcache: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("modelcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), Path(dir, key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("modelcache: publishing snapshot: %w", err)
	}
	return nil
}

// Load returns the snapshot stored under key, or ok == false on any miss:
// absent file, undecodable bytes, or metadata that does not match the
// requested key or schema. Invalid files are removed so the next Save
// replaces them; a miss is never an error, the caller just rebuilds.
func Load(dir, key string) (snap *Snapshot, ok bool) {
	p := Path(dir, key)
	f, err := os.Open(p)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	var s Snapshot
	if err := gob.NewDecoder(f).Decode(&s); err != nil {
		removeIfSameFile(f, p)
		return nil, false
	}
	if s.Schema != SchemaVersion || s.Key != key || s.Scales == nil || s.Datapath == nil {
		removeIfSameFile(f, p)
		return nil, false
	}
	return &s, true
}

// removeIfSameFile deletes the invalid snapshot at p, but only while p still
// names the very file this reader decoded. Multiple processes share the
// cache directory: between our Open and the decode failure, a concurrent
// Save may have renamed a fresh, valid snapshot over p, and an unconditional
// remove would delete that new file — the one failure mode the atomic
// temp+rename publish cannot defend against.
func removeIfSameFile(f *os.File, p string) {
	opened, err := f.Stat()
	if err != nil {
		return
	}
	current, err := os.Stat(p)
	if err != nil {
		return // already gone or unreadable; nothing to clean up
	}
	if os.SameFile(opened, current) {
		os.Remove(p)
	}
}
