package modelcache

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"tsperr/internal/mlpred"
)

// Surrogate snapshots persist the fast tier's trained regression forest and
// its training buffer alongside the model snapshots, with the same
// guarantees: atomic publish, self-validating metadata, and
// delete-on-mismatch. The file is keyed on the model fingerprint (options +
// cell library) because the surrogate's training labels are exact-pipeline
// outputs of that machine — a surrogate must never answer for a different
// characterized machine, so a fingerprint mismatch inside the file is a miss
// even when the file name matches.

// SurrogateSchemaVersion invalidates every cached surrogate snapshot when
// the serialized layout, the feature vector, or the label definition
// changes. Version 2: the feature vector grew the operating condition
// (voltage, temperature), so condition-blind version-1 snapshots must not
// answer.
const SurrogateSchemaVersion = 2

// SurrogateSample is one persisted training observation: the feature vector
// and the exact tier's log10 error rate.
type SurrogateSample struct {
	Features  []float64
	Log10Rate float64
}

// SurrogateSnapshot is the serializable state of the surrogate fast tier:
// the trained forest plus the training buffer that produced it, so a
// restarted daemon resumes both serving and learning where it left off.
type SurrogateSnapshot struct {
	// Schema and Fingerprint echo the cache metadata for self-validation on
	// load; Fingerprint is the model content address the labels came from.
	Schema      int
	Fingerprint string
	// Version is the tier's model-swap counter at save time.
	Version int
	// Forest is the trained regression model (nil means "buffer only": the
	// tier had observations but had not reached its training threshold).
	Forest *mlpred.RegForest
	// Samples is the bounded training buffer contents, oldest first.
	Samples []SurrogateSample
}

// SurrogatePath returns the surrogate snapshot file for a model fingerprint
// inside dir. The fingerprint is a hex content address, so it is directly
// filename-safe.
func SurrogatePath(dir, fingerprint string) string {
	return filepath.Join(dir, "surrogate-"+fingerprint+".gob")
}

// SaveSurrogate atomically writes a surrogate snapshot under its model
// fingerprint, creating dir as needed. Schema and Fingerprint are stamped
// here.
func SaveSurrogate(dir, fingerprint string, snap *SurrogateSnapshot) error {
	if snap == nil || (snap.Forest == nil && len(snap.Samples) == 0) {
		return fmt.Errorf("modelcache: empty surrogate snapshot")
	}
	if fingerprint == "" {
		return fmt.Errorf("modelcache: surrogate snapshot needs a model fingerprint")
	}
	snap.Schema = SurrogateSchemaVersion
	snap.Fingerprint = fingerprint
	return writeAtomic(dir, "surrogate-*.tmp", SurrogatePath(dir, fingerprint), snap)
}

// LoadSurrogate returns the surrogate snapshot stored for a model
// fingerprint, or ok == false on any miss: absent file, undecodable bytes,
// schema or fingerprint mismatch, or a structurally invalid forest. Invalid
// files are removed (with the same same-file guard as Load) so the next
// SaveSurrogate replaces them.
func LoadSurrogate(dir, fingerprint string) (snap *SurrogateSnapshot, ok bool) {
	p := SurrogatePath(dir, fingerprint)
	f, err := os.Open(p)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	var s SurrogateSnapshot
	if err := gob.NewDecoder(f).Decode(&s); err != nil {
		removeIfSameFile(f, p)
		return nil, false
	}
	if s.Schema != SurrogateSchemaVersion || s.Fingerprint != fingerprint {
		removeIfSameFile(f, p)
		return nil, false
	}
	if s.Forest != nil {
		if err := s.Forest.Validate(); err != nil {
			removeIfSameFile(f, p)
			return nil, false
		}
	}
	return &s, true
}

// writeAtomic gob-encodes v into a temp file in dir, fsyncs, and renames it
// over path — the same crash-safe publish Save uses for model snapshots.
func writeAtomic(dir, tmpPattern, path string, v any) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("modelcache: %w", err)
	}
	tmp, err := os.CreateTemp(dir, tmpPattern)
	if err != nil {
		return fmt.Errorf("modelcache: %w", err)
	}
	if err := gob.NewEncoder(tmp).Encode(v); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("modelcache: encoding snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("modelcache: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("modelcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("modelcache: publishing snapshot: %w", err)
	}
	return nil
}
