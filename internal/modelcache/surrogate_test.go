package modelcache

import (
	"encoding/gob"
	"math"
	"os"
	"testing"

	"tsperr/internal/cell"
	"tsperr/internal/errormodel"
	"tsperr/internal/mlpred"
)

func trainedForest(t *testing.T) *mlpred.RegForest {
	t.Helper()
	var samples []mlpred.RegSample
	for i := 0; i < 40; i++ {
		x := float64(i % 10)
		y := 0.0
		if x > 4 {
			y = 2
		}
		samples = append(samples, mlpred.RegSample{Features: []float64{x, float64(i)}, Target: y})
	}
	f, err := mlpred.TrainRegForest(samples, 4, mlpred.Config{MaxDepth: 4, MinLeaf: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSurrogateSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const fp = "aabbccdd"
	snap := &SurrogateSnapshot{
		Version: 3,
		Forest:  trainedForest(t),
		Samples: []SurrogateSample{{Features: []float64{1, 2}, Log10Rate: -2.5}},
	}
	if err := SaveSurrogate(dir, fp, snap); err != nil {
		t.Fatal(err)
	}
	back, ok := LoadSurrogate(dir, fp)
	if !ok {
		t.Fatal("round trip missed")
	}
	if back.Version != 3 || back.Fingerprint != fp || back.Schema != SurrogateSchemaVersion {
		t.Errorf("metadata mangled: %+v", back)
	}
	if len(back.Samples) != 1 || back.Samples[0].Log10Rate != -2.5 {
		t.Errorf("samples mangled: %+v", back.Samples)
	}
	m0, s0 := snap.Forest.Predict([]float64{7, 3})
	m1, s1 := back.Forest.Predict([]float64{7, 3})
	// Persistence is a bit-identity contract, so compare the raw bits.
	if math.Float64bits(m0) != math.Float64bits(m1) ||
		math.Float64bits(s0) != math.Float64bits(s1) {
		t.Error("forest prediction changed across the round trip")
	}
}

// TestSurrogateStaleFingerprintNeverLoaded is the acceptance check: a
// snapshot whose embedded fingerprint disagrees with the requested one — a
// stale file injected under the expected name, e.g. copied from another
// machine's cache — is rejected and deleted, never served.
func TestSurrogateStaleFingerprintNeverLoaded(t *testing.T) {
	dir := t.TempDir()
	const theirs, ours = "fingerprint-theirs", "fingerprint-ours"
	stale := &SurrogateSnapshot{Forest: trainedForest(t)}
	if err := SaveSurrogate(dir, theirs, stale); err != nil {
		t.Fatal(err)
	}
	// Inject: move the other machine's snapshot under OUR expected name.
	if err := os.Rename(SurrogatePath(dir, theirs), SurrogatePath(dir, ours)); err != nil {
		t.Fatal(err)
	}
	if _, ok := LoadSurrogate(dir, ours); ok {
		t.Fatal("stale snapshot with mismatched fingerprint was loaded")
	}
	if _, err := os.Stat(SurrogatePath(dir, ours)); !os.IsNotExist(err) {
		t.Error("stale snapshot was not deleted after rejection")
	}
}

// TestSurrogateConditionScopedFingerprint pins V/T isolation at the
// persistence layer: the snapshot key is the model fingerprint, and the
// fingerprint covers the operating condition, so a tier trained at one
// condition can never be resurrected to answer for another — a daemon
// restarted at a droop corner simply misses and starts untrained.
func TestSurrogateConditionScopedFingerprint(t *testing.T) {
	dir := t.TempDir()
	nominal := errormodel.DefaultOptions()
	droop := nominal
	droop.Cond = cell.OperatingCondition{VoltageV: 0.95, TempC: 85}
	const lib = "cell-lib-fp"
	kNominal, kDroop := Key(nominal, lib), Key(droop, lib)
	if kNominal == kDroop {
		t.Fatal("model fingerprint ignores the operating condition")
	}
	// Zero condition and explicit nominal normalize to the same machine —
	// their keys must not split the cache.
	explicit := nominal
	explicit.Cond = cell.OperatingCondition{VoltageV: cell.NominalVoltageV, TempC: cell.NominalTempC}.Norm()
	if Key(explicit, lib) != kNominal {
		t.Error("explicit nominal condition split the fingerprint from the zero value")
	}

	snap := &SurrogateSnapshot{Version: 1, Forest: trainedForest(t)}
	if err := SaveSurrogate(dir, kNominal, snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := LoadSurrogate(dir, kDroop); ok {
		t.Fatal("surrogate trained at nominal answered for the droop corner")
	}
	if _, ok := LoadSurrogate(dir, kNominal); !ok {
		t.Error("nominal snapshot lost on a same-condition reload")
	}
}

func TestSurrogateLoadRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	const fp = "fp"
	snap := &SurrogateSnapshot{Forest: trainedForest(t)}
	if err := SaveSurrogate(dir, fp, snap); err != nil {
		t.Fatal(err)
	}
	// Rewrite the file with a bumped schema but matching fingerprint.
	snap.Schema = SurrogateSchemaVersion + 1
	f, err := os.Create(SurrogatePath(dir, fp))
	if err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(f).Encode(snap); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, ok := LoadSurrogate(dir, fp); ok {
		t.Fatal("future-schema snapshot was loaded")
	}
}

func TestSurrogateLoadRejectsCorruptForest(t *testing.T) {
	dir := t.TempDir()
	const fp = "fp"
	forest := trainedForest(t)
	// Break a child index before saving; Validate must catch it at load.
	broke := false
	for _, tree := range forest.Trees {
		for i := range tree.Nodes {
			if !tree.Nodes[i].Leaf {
				tree.Nodes[i].Hi = int32(len(tree.Nodes) + 99)
				broke = true
				break
			}
		}
		if broke {
			break
		}
	}
	if !broke {
		t.Skip("no interior node to corrupt")
	}
	if err := SaveSurrogate(dir, fp, &SurrogateSnapshot{Forest: forest}); err != nil {
		t.Fatal(err)
	}
	if _, ok := LoadSurrogate(dir, fp); ok {
		t.Fatal("structurally invalid forest was loaded")
	}
}

func TestSurrogateSaveValidation(t *testing.T) {
	dir := t.TempDir()
	if err := SaveSurrogate(dir, "fp", &SurrogateSnapshot{}); err == nil {
		t.Error("empty snapshot saved")
	}
	if err := SaveSurrogate(dir, "", &SurrogateSnapshot{Forest: trainedForest(t)}); err == nil {
		t.Error("snapshot without fingerprint saved")
	}
	// Buffer-only snapshots (observations collected, threshold not reached)
	// are valid: learning state survives a restart even before first train.
	bufOnly := &SurrogateSnapshot{Samples: []SurrogateSample{{Features: []float64{1}, Log10Rate: -2}}}
	if err := SaveSurrogate(dir, "fp2", bufOnly); err != nil {
		t.Fatalf("buffer-only snapshot rejected: %v", err)
	}
	if back, ok := LoadSurrogate(dir, "fp2"); !ok || back.Forest != nil || len(back.Samples) != 1 {
		t.Errorf("buffer-only round trip: ok=%v snap=%+v", ok, back)
	}
}
