package modelcache

import (
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"

	"tsperr/internal/cell"
	"tsperr/internal/errormodel"
	"tsperr/internal/variation"
)

// testSnapshot builds a small synthetic snapshot; the cache layer does not
// care whether the tables came from real training.
func testSnapshot() *Snapshot {
	return &Snapshot{
		Scales: map[string]float64{"adder": 1.25, "ctrl": 1.1},
		Datapath: &errormodel.DatapathModel{
			AdderSlack: []variation.Canon{{Mean: 12.5, Sens: []float64{0.5, -0.25}, Rand: 1.5}},
			AdderFail:  []float64{0, 0.125},
			ShiftFail:  []float64{0, 1e-6},
			MulFail:    []float64{0, 1e-9},
			LogicFail:  1e-12,
		},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := Key(errormodel.DefaultOptions(), cell.Fingerprint())
	want := testSnapshot()
	if err := Save(dir, key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := Load(dir, key)
	if !ok {
		t.Fatal("round-trip load missed")
	}
	if got.Schema != SchemaVersion || got.Key != key {
		t.Errorf("metadata = %d/%q", got.Schema, got.Key)
	}
	if !reflect.DeepEqual(got.Scales, want.Scales) {
		t.Errorf("scales = %v, want %v", got.Scales, want.Scales)
	}
	if !reflect.DeepEqual(got.Datapath, want.Datapath) {
		t.Errorf("datapath tables changed across the round trip")
	}
}

func TestKeyChangesWithOptionsAndLibrary(t *testing.T) {
	base := errormodel.DefaultOptions()
	k0 := Key(base, cell.Fingerprint())
	changed := base
	changed.WorkingRatio += 0.01
	if Key(changed, cell.Fingerprint()) == k0 {
		t.Error("changing an option must change the key")
	}
	if Key(base, cell.Fingerprint()+"x") == k0 {
		t.Error("changing the library fingerprint must change the key")
	}
	if Key(base, cell.Fingerprint()) != k0 {
		t.Error("key must be deterministic")
	}
}

func TestLoadMissOnDifferentKey(t *testing.T) {
	dir := t.TempDir()
	key := Key(errormodel.DefaultOptions(), "lib-a")
	if err := Save(dir, key, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	other := Key(errormodel.DefaultOptions(), "lib-b")
	if _, ok := Load(dir, other); ok {
		t.Fatal("load under a different key must miss")
	}
	// The original entry is untouched by the unrelated miss.
	if _, ok := Load(dir, key); !ok {
		t.Fatal("original entry should survive")
	}
}

func TestLoadRemovesCorruptFile(t *testing.T) {
	dir := t.TempDir()
	key := Key(errormodel.DefaultOptions(), "lib")
	if err := os.WriteFile(Path(dir, key), []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := Load(dir, key); ok {
		t.Fatal("corrupt file must miss")
	}
	if _, err := os.Stat(Path(dir, key)); !os.IsNotExist(err) {
		t.Error("corrupt file should have been removed")
	}
	// A rebuild can now publish cleanly over the removed entry.
	if err := Save(dir, key, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	if _, ok := Load(dir, key); !ok {
		t.Fatal("rebuilt entry should load")
	}
}

// The cross-process race the same-inode guard exists for: a reader opens a
// corrupt snapshot, and before it gets to the cleanup remove, a concurrent
// writer publishes a fresh valid snapshot over the same path. The cleanup
// must spare the new file — it is not the one the reader found corrupt.
func TestCorruptCleanupSparesFreshlyPublishedSnapshot(t *testing.T) {
	dir := t.TempDir()
	key := Key(errormodel.DefaultOptions(), "lib")
	p := Path(dir, key)
	if err := os.WriteFile(p, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The reader's view: the corrupt file, held open across the race window.
	f, err := os.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// The concurrent writer wins the race and publishes a valid snapshot.
	if err := Save(dir, key, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	// The reader's deferred cleanup must notice p no longer names its file.
	removeIfSameFile(f, p)
	if _, ok := Load(dir, key); !ok {
		t.Fatal("freshly published snapshot was deleted by a stale reader's cleanup")
	}

	// Control: with no intervening publish, the cleanup does remove the file.
	if err := os.WriteFile(p, []byte("corrupt again"), 0o644); err != nil {
		t.Fatal(err)
	}
	f2, err := os.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	removeIfSameFile(f2, p)
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Error("unreplaced corrupt file should have been removed")
	}
}

func TestLoadRejectsKeyMismatchInsideFile(t *testing.T) {
	dir := t.TempDir()
	keyA := Key(errormodel.DefaultOptions(), "lib-a")
	keyB := Key(errormodel.DefaultOptions(), "lib-b")
	if err := Save(dir, keyA, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	// Simulate a mis-filed snapshot: bytes of key A under key B's name.
	data, err := os.ReadFile(Path(dir, keyA))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(Path(dir, keyB), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := Load(dir, keyB); ok {
		t.Fatal("embedded key mismatch must miss")
	}
	if _, err := os.Stat(Path(dir, keyB)); !os.IsNotExist(err) {
		t.Error("mismatching file should have been removed")
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	dir := t.TempDir()
	key := Key(errormodel.DefaultOptions(), "lib")
	want := testSnapshot()
	if err := Save(dir, key, want); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if i%2 == 0 {
					if err := Save(dir, key, testSnapshot()); err != nil {
						t.Errorf("save: %v", err)
						return
					}
				} else if got, ok := Load(dir, key); ok {
					// Atomic publishes mean a reader sees a complete
					// snapshot or nothing — never torn bytes.
					if !reflect.DeepEqual(got.Scales, want.Scales) {
						t.Errorf("torn read: %v", got.Scales)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestSaveRejectsIncompleteSnapshot(t *testing.T) {
	dir := t.TempDir()
	for _, snap := range []*Snapshot{
		nil,
		{Datapath: testSnapshot().Datapath},
		{Scales: map[string]float64{"adder": 1}},
	} {
		if err := Save(dir, "k", snap); err == nil {
			t.Errorf("incomplete snapshot %+v must be rejected", snap)
		}
	}
}

func TestDefaultDir(t *testing.T) {
	d, err := DefaultDir()
	if err != nil {
		t.Skipf("no user cache dir in this environment: %v", err)
	}
	if !strings.HasSuffix(d, "tsperr") {
		t.Errorf("default dir %q should end in tsperr", d)
	}
}
