module tsperr

go 1.22
