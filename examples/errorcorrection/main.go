// Error-correction comparison: the same program under three recovery
// schemes. The scheme changes two things the paper models explicitly
// (Section 4.1): the per-error cycle penalty, and — for flushing schemes —
// the conditional error probabilities p^e of instructions that follow an
// errant one, because the datapath restarts from a flushed state and
// activates different timing paths.
//
// Run with:
//
//	go run ./examples/errorcorrection
package main

import (
	"context"
	"fmt"
	"log"

	"tsperr/internal/core"
	"tsperr/internal/cpu"
	"tsperr/internal/errormodel"
	"tsperr/internal/mibench"
	"tsperr/internal/numeric"
)

func main() {
	ctx := context.Background()
	log.SetFlags(0)
	fw, err := core.NewFramework(errormodel.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	b, err := mibench.ByName("bitcount")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := fw.Analyze(ctx, b.Name, core.ProgramSpec{
		Prog: b.Prog, Setup: b.Setup, Scenarios: 4, ScaleToInsts: b.ScaleTo,
	})
	if err != nil {
		log.Fatal(err)
	}
	e := rep.Estimate
	er := e.MeanErrorRate()
	fmt.Printf("%s: mean error rate %.3f%%, lambda %.0f errors per run\n\n",
		rep.Name, 100*er, e.LambdaMean)

	// How different are the two conditional probabilities? This is the
	// dynamic effect of the correction scheme the paper highlights: after a
	// flush the datapath re-activates full-depth paths.
	var pc, pe numeric.KahanSum
	n := 0
	for _, sc := range rep.Scenarios {
		for i := range sc.Cond.PC {
			pc.Add(sc.Cond.PC[i])
			pe.Add(sc.Cond.PE[i])
			n++
		}
	}
	fmt.Printf("mean conditional probabilities: p^c=%.5f  p^e=%.5f (x%.1f after a flush)\n\n",
		pc.Value()/float64(n), pe.Value()/float64(n),
		pe.Value()/pc.Value())

	fmt.Printf("%-24s %10s %12s %12s\n", "scheme", "penalty", "speedup", "improvement")
	for _, scheme := range []cpu.Correction{
		cpu.ReplayHalfFrequency, cpu.PipelineFlush, cpu.SingleCycleReplay,
	} {
		pm := cpu.PerfModel{FreqRatio: 1.15, BaseCPI: 1, Scheme: scheme}
		fmt.Printf("%-24s %10.0f %12.4f %+11.2f%%\n",
			scheme.Name, scheme.PenaltyCycles, pm.Speedup(er), pm.ImprovementPct(er))
	}
	fmt.Println("\nbreak-even error rates per scheme:")
	for _, scheme := range []cpu.Correction{
		cpu.ReplayHalfFrequency, cpu.PipelineFlush, cpu.SingleCycleReplay,
	} {
		pm := cpu.PerfModel{FreqRatio: 1.15, BaseCPI: 1, Scheme: scheme}
		fmt.Printf("  %-24s %.3f%%\n", scheme.Name, 100*pm.BreakEvenErrorRate())
	}
}
