// Custom kernel walkthrough: bring your own assembly. This example writes a
// small fixed-point FIR filter in TS-V8 assembly, wires up its input
// datasets, runs the full estimation framework on it, and cross-checks the
// analytic distribution against the direct Monte Carlo baseline — the
// validation loop a user should run before trusting the estimate on new code.
//
// Run with:
//
//	go run ./examples/customkernel
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"tsperr/internal/core"
	"tsperr/internal/cpu"
	"tsperr/internal/errormodel"
	"tsperr/internal/isa"
	"tsperr/internal/montecarlo"
	"tsperr/internal/numeric"
)

const firSrc = `
	# 4-tap fixed-point FIR: y[i] = sum_j (h[j] * x[i-j]) >> 8
	li   r28, 1024
	lw   r29, 0(r28)        # samples
	li   r27, 2048          # x
	li   r26, 3072          # y
	li   r25, 1536          # h (4 taps)
	li   r24, 3             # i starts at 3 so x[i-3] exists
	li   r23, 0             # checksum
sample:
	bge  r24, r29, done
	li   r10, 0             # acc
	li   r11, 0             # j
tap:
	li   r1, 4
	bge  r11, r1, tapdone
	add  r2, r25, r11
	lw   r3, 0(r2)          # h[j]
	sub  r4, r24, r11
	add  r4, r27, r4
	lw   r5, 0(r4)          # x[i-j]
	mul  r6, r3, r5
	srai r6, r6, 8
	add  r10, r10, r6
	addi r11, r11, 1
	j    tap
tapdone:
	add  r2, r26, r24
	sw   r10, 0(r2)
	add  r23, r23, r10
	addi r24, r24, 1
	j    sample
done:
	li   r20, 4096
	sw   r23, 0(r20)
	halt
`

func main() {
	ctx := context.Background()
	log.SetFlags(0)

	// 1. Assemble.
	prog, err := isa.Assemble("fir", firSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled fir: %d instructions\n", len(prog.Insts))

	// 2. Input datasets: tap sets and waveforms vary per scenario.
	setup := func(c *cpu.CPU, scenario int) error {
		rng := numeric.NewRNG(uint64(scenario)*2654435761 + 1)
		const n = 128
		c.SetMem(1024, n)
		taps := []uint32{64, 128, 48, 16}
		for i, t := range taps {
			c.SetMem(uint32(1536+i), t+uint32(rng.Intn(32)))
		}
		for i := 0; i < n; i++ {
			c.SetMem(uint32(2048+i), uint32(int32(rng.Intn(4001)-2000)))
		}
		return nil
	}

	// 3. Full analysis.
	fw, err := core.NewFramework(errormodel.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	rep, err := fw.Analyze(ctx, "fir", core.ProgramSpec{
		Prog: prog, Setup: setup, Scenarios: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	e := rep.Estimate
	fmt.Printf("analytic: lambda=%.2f errors/run, error rate %.4f%% (sd %.4f%%)\n",
		e.LambdaMean, 100*e.MeanErrorRate(), 100*e.StdErrorRate())
	fmt.Printf("bounds: d_K(lambda)=%.4f d_K(R_E)=%.4f\n", e.DKLambda, e.DKCount)

	// 4. Monte Carlo validation: simulate the Markov error process directly
	//    and compare the distributions. (This is the "too slow at scale"
	//    baseline; it is fine for one small kernel.)
	var conds []*errormodel.Conditionals
	for _, sc := range rep.Scenarios {
		conds = append(conds, sc.Cond)
	}
	mc, err := montecarlo.Run(montecarlo.Spec{
		Prog: prog, Setup: setup, Cond: conds, Trials: 3000, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monte carlo: mean %.2f errors/run (analytic %.2f)\n", mc.Mean(), e.LambdaMean)

	ecdf := mc.CDF()
	worst := 0.0
	for k := 0.0; k < e.LambdaMean*4+10; k++ {
		if d := math.Abs(ecdf(k) - e.ErrorCountCDF(k)); d > worst {
			worst = d
		}
	}
	fmt.Printf("max CDF distance vs Monte Carlo: %.4f (bound %.4f + sampling noise)\n",
		worst, e.DKLambda+e.DKCount)
}
