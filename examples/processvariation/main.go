// Process-variation study: how the variation model's parameters shape the
// program error rate distribution. The paper emphasizes that (a) process
// variation turns DTS into a random variable, so instructions near the
// critical point get probabilities rather than verdicts, and (b) spatial
// correlation makes nearby paths fail together, which the canonical-form
// SSTA preserves through every min/max. This example sweeps the relative
// gate sigma and the spatially correlated share and reports the resulting
// error-rate mean/SD and approximation bounds.
//
// Run with:
//
//	go run ./examples/processvariation
package main

import (
	"context"
	"fmt"
	"log"

	"tsperr/internal/core"
	"tsperr/internal/errormodel"
	"tsperr/internal/mibench"
)

func analyze(opts errormodel.Options, label string) {
	fw, err := core.NewFramework(opts)
	if err != nil {
		log.Fatal(err)
	}
	b, err := mibench.ByName("typeset")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := fw.Analyze(context.Background(), b.Name, core.ProgramSpec{
		Prog: b.Prog, Setup: b.Setup, Scenarios: 4, ScaleToInsts: b.ScaleTo,
	})
	if err != nil {
		log.Fatal(err)
	}
	e := rep.Estimate
	fmt.Printf("%-28s %10.3f %10.3f %10.4f %10.4f\n",
		label, 100*e.MeanErrorRate(), 100*e.StdErrorRate(), e.DKLambda, e.DKCount)
}

func main() {
	log.SetFlags(0)
	fmt.Println("typeset under different variation models")
	fmt.Printf("%-28s %10s %10s %10s %10s\n",
		"variation model", "mean(%)", "sd(%)", "dK(l)", "dK(R)")

	// Sweep the per-gate sigma: more variation widens the near-critical
	// band where instructions fail probabilistically.
	for _, sigma := range []float64{0.02, 0.045, 0.08} {
		opts := errormodel.DefaultOptions()
		opts.SigmaRel = sigma
		analyze(opts, fmt.Sprintf("sigma=%.1f%% corr=50%%", sigma*100))
	}
	// Sweep the correlated share: with more correlation, a slow die slows
	// every path together; with none, path failures decorrelate.
	for _, corr := range []float64{0.0, 0.5, 0.9} {
		opts := errormodel.DefaultOptions()
		opts.CorrShare = corr
		analyze(opts, fmt.Sprintf("sigma=4.5%% corr=%.0f%%", corr*100))
	}
	fmt.Println("\nNote: each row re-calibrates the netlists so the point of first")
	fmt.Println("failure stays at 1.13x — the comparison isolates the distribution")
	fmt.Println("shape, not the operating point.")
}
