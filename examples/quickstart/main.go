// Quickstart: estimate the timing-error rate distribution of one benchmark
// on the timing-speculative processor and decide whether speculation pays.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"tsperr/internal/core"
	"tsperr/internal/errormodel"
	"tsperr/internal/mibench"
)

func main() {
	ctx := context.Background()
	log.SetFlags(0)

	// 1. Build the framework: generates the gate-level netlists, calibrates
	//    them to the paper's operating points (718 MHz baseline, point of
	//    first failure at 1.13x, working point at 1.15x), and trains the
	//    datapath timing model.
	fw, err := core.NewFramework(errormodel.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine ready: base %.0f MHz, working %.0f MHz\n",
		fw.Machine.Opts.BaseFreqMHz, fw.Machine.WorkingFreqMHz())

	// 2. Pick a benchmark and analyze it over 8 input datasets.
	b, err := mibench.ByName("dijkstra")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := fw.Analyze(ctx, b.Name, core.ProgramSpec{
		Prog:         b.Prog,
		Setup:        b.Setup,
		Scenarios:    8,
		ScaleToInsts: b.ScaleTo,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Read off the error-rate distribution.
	e := rep.Estimate
	fmt.Printf("\n%s: %d basic blocks, %d dynamic instructions\n",
		rep.Name, rep.BasicBlocks, rep.Instructions)
	fmt.Printf("error rate: mean %.3f%%, sd %.3f%%\n",
		100*e.MeanErrorRate(), 100*e.StdErrorRate())
	fmt.Printf("approximation bounds: d_K(lambda)=%.4f, d_K(R_E)=%.4f\n",
		e.DKLambda, e.DKCount)

	// 4. Query the CDF (Equation 14): how likely is the program to stay
	//    under a given error rate on a random chip with a random input?
	for _, pct := range []float64{0.2, 0.4, 0.625, 0.8, 1.0} {
		lo, hi := e.ErrorRateCDFBounds(pct / 100)
		fmt.Printf("P(error rate <= %.3f%%) = %.3f  (bounds %.3f..%.3f)\n",
			pct, e.ErrorRateCDF(pct/100), lo, hi)
	}

	// 5. Convert to performance: speedup = 1.15 / (1 + 24 * error rate).
	pm := fw.PerfModel()
	imp := pm.ImprovementPct(e.MeanErrorRate())
	fmt.Printf("\nperformance at the working point: %+.2f%%", imp)
	if imp > 0 {
		fmt.Println(" — timing speculation pays off for this program")
	} else {
		fmt.Println(" — this program should stay at the baseline frequency")
	}
}
