// Operating-point selection: sweep the speculative clock frequency and watch
// error rate and net performance trade off, reproducing the Section 6.1
// story — a point of first failure at 1.13x the STA frequency and a chosen
// working point at 1.15x — and locating the frequency where speculation
// stops paying for a given program.
//
// Run with:
//
//	go run ./examples/operatingpoint
package main

import (
	"context"
	"fmt"
	"log"

	"tsperr/internal/core"
	"tsperr/internal/cpu"
	"tsperr/internal/errormodel"
	"tsperr/internal/mibench"
)

func main() {
	ctx := context.Background()
	log.SetFlags(0)
	opts := errormodel.DefaultOptions()
	fw, err := core.NewFramework(opts)
	if err != nil {
		log.Fatal(err)
	}
	b, err := mibench.ByName("stringsearch")
	if err != nil {
		log.Fatal(err)
	}

	base := fw.Machine.BasePeriodPs
	fmt.Printf("STA sign-off: %.0f MHz (period %.1f ps); PoFF calibrated at %.2fx\n",
		opts.BaseFreqMHz, base, opts.PoFFRatio)
	fmt.Printf("%8s %10s %12s %12s %14s\n",
		"ratio", "freq(MHz)", "errors(%)", "speedup", "verdict")

	for _, ratio := range []float64{1.00, 1.05, 1.10, 1.13, 1.15, 1.18, 1.21, 1.25} {
		// Re-target the machine at this operating point and re-train the
		// datapath tables (their DTS depends on the clock).
		fw.Machine.SetWorkingPeriod(base / ratio)
		dp, err := fw.Machine.TrainDatapath(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fw.Datapath = dp
		rep, err := fw.Analyze(ctx, b.Name, core.ProgramSpec{
			Prog: b.Prog, Setup: b.Setup, Scenarios: 4, ScaleToInsts: b.ScaleTo,
		})
		if err != nil {
			log.Fatal(err)
		}
		er := rep.Estimate.MeanErrorRate()
		pm := cpu.PerfModel{FreqRatio: ratio, BaseCPI: 1, Scheme: cpu.ReplayHalfFrequency}
		speedup := pm.Speedup(er)
		verdict := "worth it"
		if speedup < 1 {
			verdict = "slower than baseline"
		}
		if er == 0 {
			verdict = "error-free"
		}
		fmt.Printf("%8.2f %10.0f %12.4f %12.4f %14s\n",
			ratio, 1e6/fw.Machine.WorkingPeriodPs, 100*er, speedup, verdict)
	}
}
