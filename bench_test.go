// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 6), plus ablations of the framework's design choices. Each
// Table 2 benchmark reports the row's numbers as custom benchmark metrics
// (error-rate mean/sd in percent, the two Kolmogorov bounds); Figure 3
// benchmarks report the CDF evaluation cost and spot values. Run with:
//
//	go test -bench=. -benchmem
package tsperr

import (
	"context"
	"math"
	"testing"
	"time"

	"tsperr/internal/activity"
	"tsperr/internal/cell"
	"tsperr/internal/core"
	"tsperr/internal/cpu"
	"tsperr/internal/errormodel"
	"tsperr/internal/gdta"
	"tsperr/internal/gen"
	"tsperr/internal/harness"
	"tsperr/internal/mibench"
	"tsperr/internal/mlpred"
	"tsperr/internal/montecarlo"
	"tsperr/internal/netlist"
	"tsperr/internal/numeric"
	"tsperr/internal/sta"
	"tsperr/internal/surrogate"
	"tsperr/internal/variation"
)

// benchTable2 runs the full framework on one benchmark and reports its
// Table 2 row as benchmark metrics.
func benchTable2(b *testing.B, name string) {
	b.Helper()
	if _, err := harness.SharedFramework(); err != nil {
		b.Fatal(err)
	}
	var rep *core.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = harness.Analyze(context.Background(), name, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	e := rep.Estimate
	b.ReportMetric(100*e.MeanErrorRate(), "errRateMean_%")
	b.ReportMetric(100*e.StdErrorRate(), "errRateSD_%")
	b.ReportMetric(e.DKLambda, "dK_lambda")
	b.ReportMetric(e.DKCount, "dK_R")
	b.ReportMetric(float64(rep.BasicBlocks), "blocks")
}

func BenchmarkTable2Basicmath(b *testing.B)    { benchTable2(b, "basicmath") }
func BenchmarkTable2Bitcount(b *testing.B)     { benchTable2(b, "bitcount") }
func BenchmarkTable2Dijkstra(b *testing.B)     { benchTable2(b, "dijkstra") }
func BenchmarkTable2Patricia(b *testing.B)     { benchTable2(b, "patricia") }
func BenchmarkTable2PGPEncode(b *testing.B)    { benchTable2(b, "pgp.encode") }
func BenchmarkTable2PGPDecode(b *testing.B)    { benchTable2(b, "pgp.decode") }
func BenchmarkTable2Tiff2bw(b *testing.B)      { benchTable2(b, "tiff2bw") }
func BenchmarkTable2Typeset(b *testing.B)      { benchTable2(b, "typeset") }
func BenchmarkTable2Ghostscript(b *testing.B)  { benchTable2(b, "ghostscript") }
func BenchmarkTable2Stringsearch(b *testing.B) { benchTable2(b, "stringsearch") }
func BenchmarkTable2GSMEncode(b *testing.B)    { benchTable2(b, "gsm.encode") }
func BenchmarkTable2GSMDecode(b *testing.B)    { benchTable2(b, "gsm.decode") }

// benchFigure3 regenerates one benchmark's Figure 3 CDF series with bounds.
func benchFigure3(b *testing.B, name string) {
	b.Helper()
	f, err := harness.SharedFramework()
	if err != nil {
		b.Fatal(err)
	}
	rep, err := harness.Analyze(context.Background(), name, 4)
	if err != nil {
		b.Fatal(err)
	}
	pm := f.PerfModel()
	var series []harness.Figure3Point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series = harness.Figure3Series(rep, pm, 1.6, 25)
	}
	b.StopTimer()
	// Spot metrics: CDF at the mean must be near the median, the bounds
	// bracket it, and the series is monotone.
	mid := rep.Estimate.ErrorRateCDF(rep.Estimate.MeanErrorRate())
	b.ReportMetric(mid, "cdf_at_mean")
	for i := 1; i < len(series); i++ {
		if series[i].CDF < series[i-1].CDF-1e-9 {
			b.Fatalf("CDF not monotone at point %d", i)
		}
		if !(series[i].Lo <= series[i].CDF && series[i].CDF <= series[i].Hi) {
			b.Fatalf("bounds do not bracket at point %d", i)
		}
	}
}

func BenchmarkFigure3Basicmath(b *testing.B)    { benchFigure3(b, "basicmath") }
func BenchmarkFigure3Bitcount(b *testing.B)     { benchFigure3(b, "bitcount") }
func BenchmarkFigure3Dijkstra(b *testing.B)     { benchFigure3(b, "dijkstra") }
func BenchmarkFigure3Patricia(b *testing.B)     { benchFigure3(b, "patricia") }
func BenchmarkFigure3PGPEncode(b *testing.B)    { benchFigure3(b, "pgp.encode") }
func BenchmarkFigure3PGPDecode(b *testing.B)    { benchFigure3(b, "pgp.decode") }
func BenchmarkFigure3Tiff2bw(b *testing.B)      { benchFigure3(b, "tiff2bw") }
func BenchmarkFigure3Typeset(b *testing.B)      { benchFigure3(b, "typeset") }
func BenchmarkFigure3Ghostscript(b *testing.B)  { benchFigure3(b, "ghostscript") }
func BenchmarkFigure3Stringsearch(b *testing.B) { benchFigure3(b, "stringsearch") }
func BenchmarkFigure3GSMEncode(b *testing.B)    { benchFigure3(b, "gsm.encode") }
func BenchmarkFigure3GSMDecode(b *testing.B)    { benchFigure3(b, "gsm.decode") }

// BenchmarkOperatingPoint reproduces the Section 6.1 calibration claim: the
// generated design is error-free at the 718 MHz baseline, starts failing
// near 1.13x, and is usable at the 1.15x working point.
func BenchmarkOperatingPoint(b *testing.B) {
	var poffER, workER float64
	for i := 0; i < b.N; i++ {
		m, err := errormodel.NewMachine(errormodel.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		dpWork, err := m.TrainDatapath(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		workER = dpWork.AdderFail[32]
		m.SetWorkingPeriod(m.PoFFPeriodPs)
		dpPoFF, err := m.TrainDatapath(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		poffER = dpPoFF.AdderFail[32]
	}
	b.ReportMetric(poffER, "fullChainFail_at_PoFF")
	b.ReportMetric(workER, "fullChainFail_at_1.15x")
	if !(poffER < workER) {
		b.Fatal("failure probability must grow beyond the PoFF")
	}
}

// BenchmarkPerfModelAnchors verifies the Figure 3 top-axis anchors of
// Section 6.3 (0.4% -> +4.93%, 1.068% -> -8.46%).
func BenchmarkPerfModelAnchors(b *testing.B) {
	pm := cpu.PaperPerfModel()
	var a1, a2 float64
	for i := 0; i < b.N; i++ {
		a1 = pm.ImprovementPct(0.004)
		a2 = pm.ImprovementPct(0.01068)
	}
	b.ReportMetric(a1, "improvement_at_0.4%")
	b.ReportMetric(a2, "improvement_at_1.068%")
	if math.Abs(a1-4.93) > 0.02 || math.Abs(a2+8.46) > 0.03 {
		b.Fatalf("anchors off: %v %v", a1, a2)
	}
}

// BenchmarkApproxValidation is the Section 5 validation experiment: direct
// Monte Carlo simulation of the Markov error process versus the
// Poisson-mixture estimate, reporting the worst CDF distance and the bound.
func BenchmarkApproxValidation(b *testing.B) {
	f, err := harness.SharedFramework()
	if err != nil {
		b.Fatal(err)
	}
	bm, err := mibench.ByName("typeset")
	if err != nil {
		b.Fatal(err)
	}
	// Unscaled analysis so Monte Carlo trials are cheap.
	rep, err := f.Analyze(context.Background(), bm.Name, core.ProgramSpec{
		Prog: bm.Prog, Setup: bm.Setup, Scenarios: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	var conds []*errormodel.Conditionals
	for _, sc := range rep.Scenarios {
		conds = append(conds, sc.Cond)
	}
	var worst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mc, err := montecarlo.Run(montecarlo.Spec{
			Prog: bm.Prog, Setup: bm.Setup, Cond: conds, Trials: 800, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		ecdf := mc.CDF()
		worst = 0
		for k := 0.0; k < rep.Estimate.LambdaMean*4+10; k++ {
			if d := math.Abs(ecdf(k) - rep.Estimate.ErrorCountCDF(k)); d > worst {
				worst = d
			}
		}
	}
	b.StopTimer()
	bound := rep.Estimate.DKLambda + rep.Estimate.DKCount
	b.ReportMetric(worst, "maxCDFDistance")
	b.ReportMetric(bound, "bound")
	if worst > bound+0.06 { // 0.06 covers Monte Carlo sampling noise
		b.Fatalf("distance %v exceeds bound %v", worst, bound)
	}
}

// BenchmarkAblationKPaths measures the sensitivity of the trained datapath
// model to the per-endpoint critical path count K of Algorithm 1 (the
// DESIGN.md ablation: too few paths under-estimates failure probabilities).
func BenchmarkAblationKPaths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := errormodel.DefaultOptions()
		opts.KPaths = 2
		m2, err := errormodel.NewMachine(opts)
		if err != nil {
			b.Fatal(err)
		}
		dp2, err := m2.TrainDatapath(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		opts.KPaths = 8
		m8, err := errormodel.NewMachine(opts)
		if err != nil {
			b.Fatal(err)
		}
		dp8, err := m8.TrainDatapath(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(dp2.AdderFail[32], "fullChainFail_K2")
		b.ReportMetric(dp8.AdderFail[32], "fullChainFail_K8")
	}
}

// BenchmarkAblationScenarios quantifies how the number of input datasets
// sharpens the data-variation spread (lambda SD stabilizes with scenarios).
func BenchmarkAblationScenarios(b *testing.B) {
	if _, err := harness.SharedFramework(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rep2, err := harness.Analyze(context.Background(), "stringsearch", 2)
		if err != nil {
			b.Fatal(err)
		}
		rep8, err := harness.Analyze(context.Background(), "stringsearch", 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rep2.Estimate.StdErrorRate(), "sd2_%")
		b.ReportMetric(100*rep8.Estimate.StdErrorRate(), "sd8_%")
	}
}

// BenchmarkFrameworkSetup measures the one-time machine construction:
// netlist generation, SSTA calibration, and datapath training (the "once per
// design" cost the paper amortizes).
func BenchmarkFrameworkSetup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.NewFramework(errormodel.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameworkSetupWarm measures a warm start from the persistent
// model cache: the first (untimed) build publishes the snapshot, then every
// timed iteration restores the machine from cached delay scales and trained
// tables, skipping SSTA calibration and datapath training entirely.
func BenchmarkFrameworkSetupWarm(b *testing.B) {
	dir := b.TempDir()
	opts := errormodel.DefaultOptions()
	if _, warm, err := core.NewFrameworkCached(opts, dir); err != nil {
		b.Fatal(err)
	} else if warm {
		b.Fatal("first build cannot be warm")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, warm, err := core.NewFrameworkCached(opts, dir)
		if err != nil {
			b.Fatal(err)
		}
		if !warm {
			b.Fatal("primed cache should stay warm")
		}
	}
}

// BenchmarkCharacterizeControl measures the per-program control-network DTS
// characterization (the gate-level block-parallel phase). The stimulus memo
// is cleared each iteration so the number reflects a cold characterization;
// a separate metric reports the warm (fully memoized) cost.
func BenchmarkCharacterizeControl(b *testing.B) {
	f, err := harness.SharedFramework()
	if err != nil {
		b.Fatal(err)
	}
	rep, err := harness.Analyze(context.Background(), "stringsearch", 2)
	if err != nil {
		b.Fatal(err)
	}
	sc := rep.Scenarios[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Machine.ClearStimulusMemo()
		if _, err := f.Machine.CharacterizeControl(context.Background(), rep.Graph, sc.Profile, sc.Features.Results); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	warmStart := time.Now()
	if _, err := f.Machine.CharacterizeControl(context.Background(), rep.Graph, sc.Profile, sc.Features.Results); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(time.Since(warmStart).Seconds()*1e3, "warm_ms")
}

// BenchmarkSimulationThroughput measures instrumented-simulation speed in
// instructions per second (the paper reports ~4.6 M inst/s on its host).
func BenchmarkSimulationThroughput(b *testing.B) {
	f, err := harness.SharedFramework()
	if err != nil {
		b.Fatal(err)
	}
	bm, err := mibench.ByName("bitcount")
	if err != nil {
		b.Fatal(err)
	}
	var insts int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		machine, err := cpu.New(bm.Prog, cpu.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := bm.Setup(machine, i); err != nil {
			b.Fatal(err)
		}
		feats, obs := errormodel.NewFeatureCollector(len(bm.Prog.Insts), f.Datapath)
		st, err := machine.Run(obs)
		if err != nil {
			b.Fatal(err)
		}
		insts += st.Instructions
		_ = feats
	}
	b.StopTimer()
	if elapsed := b.Elapsed().Seconds(); elapsed > 0 {
		b.ReportMetric(float64(insts)/elapsed/1e6, "Minst/s")
	}
}

// benchSetWord writes a 32-bit word into a dense primary-input slice.
func benchSetWord(vals []bool, gates [32]netlist.GateID, w uint32) {
	for i := 0; i < 32; i++ {
		vals[gates[i]] = (w>>uint(i))&1 == 1
	}
}

// BenchmarkEndToEndWarm measures the warm per-request latency of the full
// tsperr pipeline on stringsearch — instrumented simulation, (memoized)
// control characterization, marginals, and the Poisson-mixture estimate.
// This is the ROADMAP's hot-path number: everything model-setup related is
// amortized by the shared framework and the first untimed request.
func BenchmarkEndToEndWarm(b *testing.B) {
	if _, err := harness.SharedFramework(); err != nil {
		b.Fatal(err)
	}
	if _, err := harness.Analyze(context.Background(), "stringsearch", 4); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.Analyze(context.Background(), "stringsearch", 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerCycleDTA measures the per-cycle DTA kernel: one gate-level
// activity-simulation cycle of the adder followed by the stage-DTS lookup it
// feeds. The stimulus rotates through a small pattern set, so after the first
// rounds the analyzer answers from its activation-signature memo — the
// steady-state cost of Algorithm 1 inside a characterization loop.
func BenchmarkPerCycleDTA(b *testing.B) {
	f, err := harness.SharedFramework()
	if err != nil {
		b.Fatal(err)
	}
	m := f.Machine
	sim, err := activity.NewSimulator(m.Adder.N)
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]bool, m.Adder.N.NumGates())
	eps := m.Adder.N.DataEndpoints(0)
	tr := &activity.Trace{NumGates: m.Adder.N.NumGates()}
	pats := [...][2]uint32{
		{0xFFFFFFFF, 1}, {0, 0}, {0x0000FFFF, 1}, {0xAAAAAAAA, 0x55555555},
		{1, 1}, {0x00FF00FF, 0xFF00FF00}, {0xFFFF0000, 0x10000}, {7, 3},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pats[i%len(pats)]
		benchSetWord(vals, m.Adder.A, p[0])
		benchSetWord(vals, m.Adder.B, p[1])
		tr.Sets = tr.Sets[:0]
		tr.Sets = append(tr.Sets, sim.CycleDense(vals))
		_, _ = m.AdderDTA.StageDTS(eps, 0, tr)
	}
}

// BenchmarkStageDTSMemoHit isolates the StageDTS memo-hit path: the trace and
// endpoint set are fixed, the first probe populates the activation-signature
// memo, and every timed iteration must answer from it. The allocs/op column
// is the guarded number — the hit path is supposed to be allocation-free.
func BenchmarkStageDTSMemoHit(b *testing.B) {
	f, err := harness.SharedFramework()
	if err != nil {
		b.Fatal(err)
	}
	m := f.Machine
	sim, err := activity.NewSimulator(m.Adder.N)
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]bool, m.Adder.N.NumGates())
	tr := &activity.Trace{NumGates: m.Adder.N.NumGates()}
	tr.Sets = append(tr.Sets, sim.CycleDense(vals))
	benchSetWord(vals, m.Adder.A, 0xFFFFFFFF)
	benchSetWord(vals, m.Adder.B, 1)
	tr.Sets = append(tr.Sets, sim.CycleDense(vals))
	eps := m.Adder.N.DataEndpoints(0)
	if _, ok := m.AdderDTA.StageDTS(eps, 1, tr); !ok {
		b.Fatal("full-chain stimulus must activate a path")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := m.AdderDTA.StageDTS(eps, 1, tr); !ok {
			b.Fatal("memoized stage DTS disappeared")
		}
	}
}

// BenchmarkPeriodSweepTraining measures datapath re-training while the
// working period alternates between the working and PoFF points — the shape
// of an operating-point bisection or a `tsperr -batch` sweep. The endpoint
// path sets and activation signatures are period-independent, so how much of
// the per-period work the analyzers reuse shows up directly here.
func BenchmarkPeriodSweepTraining(b *testing.B) {
	m, err := errormodel.NewMachine(errormodel.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	periods := [2]float64{m.WorkingPeriodPs, m.PoFFPeriodPs}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SetWorkingPeriod(periods[i%2])
		if _, err := m.TrainDatapath(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoissonMixtureCDF measures the Equation (14) quadrature.
func BenchmarkPoissonMixtureCDF(b *testing.B) {
	if _, err := harness.SharedFramework(); err != nil {
		b.Fatal(err)
	}
	rep, err := harness.Analyze(context.Background(), "patricia", 3)
	if err != nil {
		b.Fatal(err)
	}
	e := rep.Estimate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.ErrorCountCDF(e.LambdaMean)
	}
}

// BenchmarkRNG measures the Monte Carlo random source.
func BenchmarkRNG(b *testing.B) {
	r := numeric.NewRNG(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Norm()
	}
	_ = sink
}

// BenchmarkAblationGraphVsPathDTA compares the path-based DTA of the paper
// (Algorithm 1 over k enumerated critical paths) with the graph-based
// alternative of the Related Work ([7]): per-cycle cost and the DTS gap on
// the adder under random stimulus.
func BenchmarkAblationGraphVsPathDTA(b *testing.B) {
	m, err := errormodel.NewMachine(errormodel.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	ga, err := gdta.New(m.AdderEngine)
	if err != nil {
		b.Fatal(err)
	}
	pa := m.AdderDTA
	sim, err := activity.NewSimulator(m.Adder.N)
	if err != nil {
		b.Fatal(err)
	}
	rng := numeric.NewRNG(2019)
	tr := &activity.Trace{NumGates: m.Adder.N.NumGates()}
	const cycles = 24
	for t := 0; t < cycles; t++ {
		in := map[netlist.GateID]bool{}
		a, bb := uint32(rng.Uint64()), uint32(rng.Uint64())
		for i := 0; i < 32; i++ {
			in[m.Adder.A[i]] = (a>>uint(i))&1 == 1
			in[m.Adder.B[i]] = (bb>>uint(i))&1 == 1
		}
		tr.Sets = append(tr.Sets, sim.Cycle(in))
	}
	eps := m.Adder.N.Endpoints(0)
	var gap, worstGap float64
	n := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gap, worstGap, n = 0, 0, 0
		for t := 1; t < cycles; t++ {
			g, okG := ga.StageDTS(eps, t, tr)
			p, okP := pa.StageDTS(eps, t, tr)
			if okG && okP {
				d := p.Mean - g.Mean // graph sees more paths => smaller DTS
				gap += d
				if d > worstGap {
					worstGap = d
				}
				n++
			}
		}
	}
	b.StopTimer()
	if n > 0 {
		b.ReportMetric(gap/float64(n), "meanDTSGap_ps")
		b.ReportMetric(worstGap, "worstDTSGap_ps")
	}
}

// BenchmarkAblationCLAvsRipple contrasts the ripple-carry datapath the
// framework models with a carry-lookahead implementation: critical path and
// the operand dependence of the trained per-depth failure table flatten.
func BenchmarkAblationCLAvsRipple(b *testing.B) {
	var rippleDelay, claDelay float64
	for i := 0; i < b.N; i++ {
		model, err := variation.NewModel(2, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		ripple := gen.Adder()
		cla := gen.CLAAdder()
		eR, err := sta.NewEngine(ripple.N, model, 2000, cell.SigmaRel, 1)
		if err != nil {
			b.Fatal(err)
		}
		eC, err := sta.NewEngine(cla.N, model, 2000, cell.SigmaRel, 1)
		if err != nil {
			b.Fatal(err)
		}
		rippleDelay = eR.MaxDelayNominal()
		claDelay = eC.MaxDelayNominal()
	}
	b.ReportMetric(rippleDelay, "rippleCritPath_ps")
	b.ReportMetric(claDelay, "claCritPath_ps")
}

// BenchmarkAblationMLBaseline trains the Related-Work classifier baselines
// (decision tree, random forest) on one chip-sample's error outcomes and
// compares their calibration against the analytic probabilities — the
// paper's argument for a DTS-based statistical model.
func BenchmarkAblationMLBaseline(b *testing.B) {
	f, err := harness.SharedFramework()
	if err != nil {
		b.Fatal(err)
	}
	bm, err := mibench.ByName("dijkstra")
	if err != nil {
		b.Fatal(err)
	}
	// Gather one run's dynamic instructions with analytic probabilities and
	// sampled outcomes (one manufactured chip + input).
	rng := numeric.NewRNG(77)
	var samples []mlpred.Sample
	var analyticBrier numeric.KahanSum
	machine, err := cpu.New(bm.Prog, cpu.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := bm.Setup(machine, 0); err != nil {
		b.Fatal(err)
	}
	if _, err := machine.Run(func(d *cpu.DynInst) {
		p := f.Datapath.FailProb(d.Op, d.Depth)
		label := rng.Float64() < p
		samples = append(samples, mlpred.Sample{
			Features: []float64{float64(d.Op), float64(d.Depth), float64(d.DepthFlush), float64(d.Toggle)},
			Label:    label,
		})
		y := 0.0
		if label {
			y = 1
		}
		analyticBrier.Add((p - y) * (p - y))
	}); err != nil {
		b.Fatal(err)
	}
	var tree *mlpred.Tree
	var forest *mlpred.Forest
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err = mlpred.Train(samples, mlpred.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		forest, err = mlpred.TrainForest(samples, 8, mlpred.DefaultConfig(), 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(mlpred.Accuracy(tree.Predict, samples), "treeAccuracy")
	b.ReportMetric(mlpred.BrierScore(tree.PredictProb, samples), "treeBrier")
	b.ReportMetric(mlpred.BrierScore(forest.PredictProb, samples), "forestBrier")
	b.ReportMetric(analyticBrier.Value()/float64(len(samples)), "analyticBrier")
}

// BenchmarkAnalyzeScenarioPool guards the resilient run layer's throughput:
// it drives Analyze through the bounded worker pool with a scenario count
// well above GOMAXPROCS and reports scenarios per second, so a regression
// versus the seed's unbounded per-scenario fan-out shows up as a drop in
// this metric rather than slipping in unnoticed.
func BenchmarkAnalyzeScenarioPool(b *testing.B) {
	if _, err := harness.SharedFramework(); err != nil {
		b.Fatal(err)
	}
	const scenarios = 16
	var rep *core.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = harness.Analyze(context.Background(), "stringsearch", scenarios)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(rep.Scenarios) != scenarios {
		b.Fatalf("scenarios = %d", len(rep.Scenarios))
	}
	if elapsed := b.Elapsed().Seconds(); elapsed > 0 {
		b.ReportMetric(float64(scenarios*b.N)/elapsed, "scenarios/s")
	}
}

// BenchmarkEstimateSurrogateHit measures the surrogate fast tier's serving
// path — benchmark-name resolution, feature extraction, and the
// confidence-gated forest prediction — on a tier trained from the suite's
// exact labels. Compare with BenchmarkEndToEndWarm (the exact warm path,
// ~1.3ms): a surrogate hit must be at least two orders of magnitude cheaper
// for the two-tier design to pay off.
func BenchmarkEstimateSurrogateHit(b *testing.B) {
	fw, err := harness.SharedFramework()
	if err != nil {
		b.Fatal(err)
	}
	samples, err := harness.SurrogateEvalSamples(context.Background(), nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	tier, err := surrogate.New(surrogate.Config{Fingerprint: "bench"})
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range samples {
		tier.Observe(s.Features, s.Log10Rate)
	}
	if err := tier.Retrain(); err != nil {
		b.Fatal(err)
	}
	tier.Quiesce()
	adapter := harness.NewSurrogateAdapter(fw, tier)
	if d := adapter.Decide("stringsearch", 4, 0); !d.Serve {
		b.Fatalf("gate escalated (%s); the benchmark must measure the serving path", d.Reason)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := adapter.Decide("stringsearch", 4, 0); !d.Serve {
			b.Fatal("gate escalated mid-benchmark")
		}
	}
}
