# tsperr build/verify targets.
#
# `make check` is the tier-2 verification gate: vet, the project linters
# (tsperrlint source passes + the netlist structural lint), and the full
# test suite under the race detector (the resilience tests exercise the
# scenario worker pool concurrently).

GO ?= go

.PHONY: all build test lint check smoke bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# `make lint` runs the project-specific static analysis (DESIGN.md §9):
# the tsperrlint pass suite over every package including test files, and
# the structural lint over every generated pipeline netlist.
lint:
	$(GO) run ./cmd/tsperrlint -tests ./...
	$(GO) run ./cmd/tsperrlint -netlist

check: lint
	$(GO) vet ./...
	$(GO) test -race ./...

# `make smoke` runs the tsperrd daemon end to end: warm-up, one estimate, a
# 16-request dedup burst, and a SIGTERM drain (mirrors the CI smoke job).
smoke:
	./scripts/tsperrd-smoke.sh

# `make bench` records the full benchmark suite as go-test JSON events in
# BENCH_<date>.json (benchstat-friendly after extracting the output lines:
#   jq -r 'select(.Action=="output").Output' BENCH_<date>.json | benchstat -).
BENCH_OUT := BENCH_$(shell date +%Y-%m-%d).json

bench:
	$(GO) test -run '^$$' -bench . -benchmem -json . | tee $(BENCH_OUT)

clean:
	$(GO) clean ./...
