# tsperr build/verify targets.
#
# `make check` is the tier-2 verification gate: vet, the project linters
# (tsperrlint source passes + the netlist structural lint), and the full
# test suite under the race detector (the resilience tests exercise the
# scenario worker pool concurrently).

GO ?= go

.PHONY: all build test lint lint-fix-check check fuzz cover smoke smoke-cluster smoke-surrogate smoke-oppoint bench pprof clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# `make lint` runs the project-specific static analysis (DESIGN.md §9/§14):
# the tsperrlint pass suite over every package including test files, the
# structural lint over every generated pipeline netlist, and the
# suppression-budget ratchet (lint.budget: directive counts only go down).
lint:
	$(GO) run ./cmd/tsperrlint -tests ./...
	$(GO) run ./cmd/tsperrlint -netlist
	$(GO) run ./cmd/tsperrlint -ignores -budget lint.budget ./... >/dev/null

# `make lint-fix-check` asserts the tree is triage-clean: all seven
# analyzers report nothing (no outstanding fix-ups) and the suppression
# inventory is within budget. CI runs it; run it before sending a PR that
# touches determinism-, slab- or batch-sensitive code.
lint-fix-check: lint
	@echo "lint-fix-check: triage clean — 0 findings, suppressions within budget"

check: lint fuzz
	$(GO) vet ./...
	$(GO) test -race ./...

# `make fuzz` runs the native fuzz targets briefly: long enough to catch a
# canonical-hashing regression, short enough for the pre-commit gate. The
# checked-in seed corpus always runs as part of `make test` regardless.
FUZZTIME ?= 10s

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzRequestHash -fuzztime $(FUZZTIME) ./internal/server/

# `make cover` is the coverage ratchet: total statement coverage must stay
# at or above COVER_MIN. Raise the floor when coverage grows; never lower it
# to admit a regression. (Measured 78.9% when the ratchet was introduced.)
COVER_MIN ?= 75.0

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | awk -v min=$(COVER_MIN) \
		'/^total:/ { sub(/%/, "", $$3); \
		   if ($$3 + 0 < min) { printf "FAIL: coverage %.1f%% below ratchet %.1f%%\n", $$3, min; exit 1 } \
		   printf "coverage %.1f%% (ratchet %.1f%%)\n", $$3, min }'

# `make smoke` runs the tsperrd daemon end to end: warm-up, one estimate, a
# 16-request dedup burst, and a SIGTERM drain (mirrors the CI smoke job).
smoke:
	./scripts/tsperrd-smoke.sh

# `make smoke-cluster` runs the distributed chaos smoke: a coordinator plus
# two workers, one SIGKILLed mid-run; the surviving nodes must return a
# complete validation byte-identical to a single-node run, then drain cleanly.
smoke-cluster:
	./scripts/tsperrd-cluster-smoke.sh

# `make smoke-surrogate` runs the two-tier daemon end to end: untrained
# escalations, background training, shadow residuals from forced-exact
# requests, the response tier field, and a SIGTERM drain.
smoke-surrogate:
	./scripts/tsperrd-surrogate-smoke.sh

# `make smoke-oppoint` runs the operating-point search end to end: a 2x2
# voltage/temperature grid through POST /v1/oppoint, a warm re-run that must
# answer every bisection probe from the cache (pinned via the oppoint
# sub-request metrics), and a SIGTERM drain.
smoke-oppoint:
	./scripts/tsperrd-oppoint-smoke.sh

# `make bench` records the full benchmark suite as go-test JSON events in
# BENCH_<date>.json (benchstat-friendly after extracting the output lines:
#   jq -r 'select(.Action=="output").Output' BENCH_<date>.json | benchstat -).
BENCH_OUT := BENCH_$(shell date +%Y-%m-%d).json

bench:
	$(GO) test -run '^$$' -bench . -benchmem -json . | tee $(BENCH_OUT)

# `make pprof` captures CPU and allocation profiles of the warm end-to-end
# stringsearch estimate (BenchmarkEndToEndWarm drives the simulate -> activity
# -> DTA hot path). Inspect with:
#   go tool pprof -top cpu.prof
#   go tool pprof -top -sample_index=alloc_objects mem.prof
pprof:
	$(GO) test -run '^$$' -bench 'BenchmarkEndToEndWarm$$' -benchtime 1000x \
		-cpuprofile cpu.prof -memprofile mem.prof .
	@echo "wrote cpu.prof / mem.prof; try: $(GO) tool pprof -top cpu.prof"

clean:
	$(GO) clean ./...
