# tsperr build/verify targets.
#
# `make check` is the tier-2 verification gate: vet plus the full test
# suite under the race detector (the resilience tests exercise the
# scenario worker pool concurrently).

GO ?= go

.PHONY: all build test check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

clean:
	$(GO) clean ./...
