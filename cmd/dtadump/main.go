// Command dtadump demonstrates the DTA flow of Figure 1 on the generated
// gate-level netlists: it simulates a stimulus, records per-cycle activation
// (the VCD input of Algorithm 1), and prints the dynamic timing slack of
// each cycle, contrasting it with the static (STA) slack.
//
// Usage:
//
//	dtadump [-unit adder|control] [-cycles N] [-vcd file] [-timeout D]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tsperr/internal/activity"
	"tsperr/internal/cliutil"
	"tsperr/internal/dta"
	"tsperr/internal/errormodel"
	"tsperr/internal/isa"
	"tsperr/internal/netlist"
	"tsperr/internal/numeric"
)

func setWord(in map[netlist.GateID]bool, gates [32]netlist.GateID, w uint32) {
	for i := 0; i < 32; i++ {
		in[gates[i]] = (w>>uint(i))&1 == 1
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dtadump: ")
	unit := flag.String("unit", "adder", "netlist to analyze: adder or control")
	cycles := flag.Int("cycles", 12, "stimulus length")
	vcdPath := flag.String("vcd", "", "also write the activity trace as VCD to this file")
	timeout := flag.Duration("timeout", 0, "abort the dump after this duration (0 = none)")
	flag.Parse()
	ctx, cancel := cliutil.Context(*timeout)
	defer cancel()

	m, err := errormodel.NewMachine(errormodel.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	rng := numeric.NewRNG(2019)

	var (
		n        *netlist.Netlist
		analyzer *dta.Analyzer
		tr       *activity.Trace
	)
	switch *unit {
	case "adder":
		n = m.Adder.N
		analyzer = m.AdderDTA
		sim, err := activity.NewSimulator(n)
		if err != nil {
			log.Fatal(err)
		}
		tr = &activity.Trace{NumGates: n.NumGates()}
		for t := 0; t < *cycles; t++ {
			if err := ctx.Err(); err != nil {
				log.Fatalf("aborted at cycle %d: %v", t, err)
			}
			in := map[netlist.GateID]bool{}
			a := uint32(rng.Uint64())
			b := uint32(rng.Uint64())
			if t%4 == 3 { // periodically force a full carry chain
				a, b = 0xFFFFFFFF, 1
			}
			setWord(in, m.Adder.A, a)
			setWord(in, m.Adder.B, b)
			tr.Sets = append(tr.Sets, sim.Cycle(in))
		}
	case "control":
		n = m.Ctrl.N
		analyzer = m.CtrlDTA
		sim, err := activity.NewSimulator(n)
		if err != nil {
			log.Fatal(err)
		}
		tr = &activity.Trace{NumGates: n.NumGates()}
		ops := []isa.Inst{
			{Op: isa.OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
			{Op: isa.OpLw, Rd: 4, Rs1: 1, Imm: 8},
			{Op: isa.OpBne, Rs1: 4, Rs2: 0, Imm: -2},
			{Op: isa.OpXor, Rd: 5, Rs1: 4, Rs2: 1},
		}
		for t := 0; t < *cycles; t++ {
			if err := ctx.Err(); err != nil {
				log.Fatalf("aborted at cycle %d: %v", t, err)
			}
			in := map[netlist.GateID]bool{}
			setWord(in, m.Ctrl.Instr, ops[t%len(ops)].Encode())
			setWord(in, m.Ctrl.ExResult, uint32(rng.Uint64()))
			tr.Sets = append(tr.Sets, sim.Cycle(in))
		}
	default:
		log.Fatalf("unknown unit %q", *unit)
	}

	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := activity.WriteVCD(f, tr, *unit); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *vcdPath)
	}

	fmt.Printf("unit %s: %d gates, clock period %.1f ps (%.0f MHz)\n",
		*unit, n.NumGates(), m.WorkingPeriodPs, m.WorkingFreqMHz())
	fmt.Printf("%6s %12s %12s %12s %14s\n", "cycle", "activated", "DTS mean", "DTS sigma", "P(error)")
	for t := 0; t < tr.Cycles(); t++ {
		if err := ctx.Err(); err != nil {
			log.Fatalf("aborted at cycle %d: %v", t, err)
		}
		var eps []netlist.GateID
		for s := 0; s < n.Stages; s++ {
			eps = append(eps, n.Endpoints(s)...)
		}
		form, ok := analyzer.StageDTS(eps, t, tr)
		if !ok {
			fmt.Printf("%6d %12d %12s %12s %14s\n", t, tr.Sets[t].Count(), "-", "-", "no active path")
			continue
		}
		fmt.Printf("%6d %12d %12.1f %12.1f %14.3g\n",
			t, tr.Sets[t].Count(), form.Mean, form.Std(), dta.ErrorProbability(form))
	}
}
