package main

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// The smoke tests re-exec the test binary as the real command: TestMain
// diverts into main() when the marker env var is set, so flag parsing,
// usage text, and exit codes are exercised through the genuine entry point
// without a separate `go build`.
func TestMain(m *testing.M) {
	if os.Getenv("TSPERR_SMOKE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runSelf invokes the command under test with args and returns its exit
// code plus captured stdout/stderr.
func runSelf(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "TSPERR_SMOKE_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	code = 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return code, out.String(), errb.String()
}

func TestSmokeNoArgsListsBenchmarks(t *testing.T) {
	code, _, stderr := runSelf(t)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (usage)\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "usage: tsperr") {
		t.Errorf("stderr missing usage line: %s", stderr)
	}
	for _, b := range []string{"dijkstra", "typeset", "pgp.encode"} {
		if !strings.Contains(stderr, b) {
			t.Errorf("benchmark list missing %q: %s", b, stderr)
		}
	}
}

func TestSmokeTooManyArgs(t *testing.T) {
	code, _, stderr := runSelf(t, "dijkstra", "typeset")
	if code != 2 || !strings.Contains(stderr, "usage: tsperr") {
		t.Fatalf("exit = %d, stderr = %s; want usage error", code, stderr)
	}
}

func TestSmokeUnknownFlag(t *testing.T) {
	code, _, stderr := runSelf(t, "-no-such-flag")
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "no-such-flag") {
		t.Errorf("stderr does not name the bad flag: %s", stderr)
	}
}

func TestSmokeUnknownBenchmarkIsAnalysisFailure(t *testing.T) {
	code, _, stderr := runSelf(t, "no-such-benchmark")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (analysis failure)\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "no-such-benchmark") {
		t.Errorf("stderr does not name the benchmark: %s", stderr)
	}
}

func TestSmokeExplain(t *testing.T) {
	code, stdout, stderr := runSelf(t, "-explain")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "Figures 1 and 2") {
		t.Errorf("explain text missing the flow reference: %s", stdout)
	}
}

func TestSmokeBatchMissingSuiteFile(t *testing.T) {
	code, _, stderr := runSelf(t, "-batch", "/no/such/suite.json")
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (usage)\nstderr: %s", code, stderr)
	}
}

func TestSmokeBatchRejectsPositionalArg(t *testing.T) {
	code, _, stderr := runSelf(t, "-batch", "suite.json", "dijkstra")
	if code != 2 || !strings.Contains(stderr, "no benchmark argument") {
		t.Fatalf("exit = %d, stderr = %s; want usage error", code, stderr)
	}
}

func TestSmokeOppointMissingBenchmarkIsUsage(t *testing.T) {
	code, _, stderr := runSelf(t, "-oppoint", "-target", "0.01")
	if code != 2 || !strings.Contains(stderr, "usage: tsperr -oppoint") {
		t.Fatalf("exit = %d, stderr = %s; want oppoint usage error", code, stderr)
	}
}

func TestSmokeOppointBadTargetIsUsage(t *testing.T) {
	code, _, stderr := runSelf(t, "-oppoint", "-target", "2", "typeset")
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (usage)\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "outside [0, 1]") {
		t.Errorf("stderr does not explain the bad target: %s", stderr)
	}
}

func TestSmokeOppointBadVoltageIsUsage(t *testing.T) {
	code, _, stderr := runSelf(t, "-oppoint", "-voltage", "9", "typeset")
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (usage)\nstderr: %s", code, stderr)
	}
}

func TestSmokeOppointUnknownBenchmarkIsAnalysisFailure(t *testing.T) {
	code, _, stderr := runSelf(t, "-oppoint", "no-such-benchmark")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (analysis failure)\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "no-such-benchmark") {
		t.Errorf("stderr does not name the benchmark: %s", stderr)
	}
}

func TestSmokeOppointRejectsBatch(t *testing.T) {
	code, _, stderr := runSelf(t, "-oppoint", "-batch", "suite.json")
	if code != 2 || !strings.Contains(stderr, "usage: tsperr -oppoint") {
		t.Fatalf("exit = %d, stderr = %s; want oppoint usage error", code, stderr)
	}
}

func TestSmokeBatchMalformedSuite(t *testing.T) {
	path := t.TempDir() + "/suite.json"
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runSelf(t, "-batch", path)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (usage)\nstderr: %s", code, stderr)
	}
}
