package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"tsperr/internal/cell"
	"tsperr/internal/cliutil"
	"tsperr/internal/core"
	"tsperr/internal/cpu"
	"tsperr/internal/errormodel"
	"tsperr/internal/harness"
	"tsperr/internal/mibench"
)

// oppointJSON is the -oppoint -json document: the bisection outcome at one
// operating condition, mirroring one point of tsperrd's /v1/oppoint response.
type oppointJSON struct {
	Benchmark         string  `json:"benchmark"`
	VoltageV          float64 `json:"voltage"`
	TempC             float64 `json:"temp_c"`
	TargetErrorRate   float64 `json:"target_error_rate"`
	BaseFreqMHz       float64 `json:"base_freq_mhz"`
	Feasible          bool    `json:"feasible"`
	Ratio             float64 `json:"ratio"`
	PeriodPs          float64 `json:"period_ps"`
	FreqMHz           float64 `json:"freq_mhz"`
	ErrorRate         float64 `json:"error_rate"`
	Speedup           float64 `json:"speedup"`
	CDFBelowBreakEven float64 `json:"cdf_below_break_even"`
	Evals             int     `json:"evals"`
}

// runOppoint bisects the fastest frequency ratio meeting the target error
// rate at one operating condition (tsperr -oppoint). Exit status follows the
// command contract: 2 for usage errors (already rejected by the caller), 1
// for analysis failures; an infeasible target is a result, not a failure.
func runOppoint(name string, scenarios int, timeout time.Duration, cond cell.OperatingCondition,
	target, minRatio, maxRatio float64, steps int, jsonOut bool) {
	// Unknown benchmark is an analysis failure (exit 1), matching the plain
	// single-benchmark mode; checking upfront avoids building a framework
	// just to discover the name is bad.
	if _, err := mibench.ByName(name); err != nil {
		fmt.Fprintf(os.Stderr, "tsperr: %v\n", err)
		os.Exit(cliutil.ExitFailure)
	}
	if !(target >= 0 && target <= 1) {
		fmt.Fprintf(os.Stderr, "tsperr: -target %v outside [0, 1]\n", target)
		os.Exit(cliutil.ExitUsage)
	}
	ctx, cancel := cliutil.Context(timeout)
	defer cancel()

	// Each probed ratio's report is kept so the chosen point's risk summary
	// comes from the computation that decided the bisection.
	reports := make(map[uint64]*core.Report)
	eval := func(ctx context.Context, ratio float64) (float64, error) {
		rep, err := harness.AnalyzeAtPoint(ctx, name, scenarios, core.AnalyzeOpts{}, cond, ratio)
		if err != nil {
			return 0, err
		}
		reports[math.Float64bits(ratio)] = rep
		return rep.Estimate.MeanErrorRate(), nil
	}
	res, err := core.BisectRatio(ctx, minRatio, maxRatio, steps, target, eval)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsperr: %s: oppoint search failed:\n", name)
		for _, line := range splitLines(harness.FailureDetail(err)) {
			fmt.Fprintf(os.Stderr, "  %s\n", line)
		}
		os.Exit(cliutil.ExitFailure)
	}

	baseFreq := errormodel.DefaultOptions().BaseFreqMHz
	pm := cpu.PerfModel{FreqRatio: res.Ratio, BaseCPI: 1, Scheme: cpu.ReplayHalfFrequency}
	doc := oppointJSON{
		Benchmark:       name,
		VoltageV:        cond.Norm().VoltageV,
		TempC:           cond.Norm().TempC,
		TargetErrorRate: target,
		BaseFreqMHz:     baseFreq,
		Feasible:        res.Feasible,
		Ratio:           res.Ratio,
		PeriodPs:        1e6 / baseFreq / res.Ratio,
		FreqMHz:         baseFreq * res.Ratio,
		ErrorRate:       res.ErrorRate,
		Speedup:         pm.Speedup(res.ErrorRate),
		Evals:           res.Evals,
	}
	if rep := reports[math.Float64bits(res.Ratio)]; rep != nil && rep.Estimate != nil {
		doc.CDFBelowBreakEven = rep.Estimate.ErrorRateCDF(pm.BreakEvenErrorRate())
	}

	if jsonOut {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(buf))
		return
	}
	fmt.Printf("%s: operating-point search at %s (base %.0f MHz)\n", name, cond, baseFreq)
	fmt.Printf("target error rate: %.3g over ratios [%.4g, %.4g] in %d steps (%d evals)\n",
		target, minRatio, maxRatio, steps, res.Evals)
	if !res.Feasible {
		fmt.Printf("INFEASIBLE: even ratio %.4f has error rate %.3g > target\n",
			res.Ratio, res.ErrorRate)
		return
	}
	fmt.Printf("fastest feasible ratio: %.4f (%.0f MHz, period %.1f ps)\n",
		doc.Ratio, doc.FreqMHz, doc.PeriodPs)
	fmt.Printf("error rate there: %.3g; expected speedup %.4f; P(profitable) %.3f\n",
		doc.ErrorRate, doc.Speedup, doc.CDFBelowBreakEven)
}
