package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"tsperr/internal/cliutil"
	"tsperr/internal/harness"
	"tsperr/internal/surrogate"
)

// surrogateEvalBounds is the uncertainty-bound sweep behind the
// coverage-vs-accuracy curve: from a gate so strict it serves almost nothing
// to one loose enough to serve everything the model has seen.
var surrogateEvalBounds = []float64{0.02, 0.05, 0.1, 0.15, 0.2, 0.25, 0.35, 0.5, 0.75, 1}

// runSurrogateEval labels the benchmark suite with the exact pipeline, trains
// the surrogate on a split, and reports how the confidence gate trades
// coverage (fraction of held-out requests served) against accuracy (MAE in
// log10 error-rate units) as the uncertainty bound sweeps.
func runSurrogateEval(timeout time.Duration, holdout float64, seed uint64, jsonOut bool) {
	ctx, cancel := cliutil.Context(timeout)
	defer cancel()
	t0 := time.Now()
	samples, err := harness.SurrogateEvalSamples(ctx, nil, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsperr: surrogate eval: %v\n", err)
		os.Exit(cliutil.ExitFailure)
	}
	label := time.Since(t0)
	res, err := surrogate.Eval(samples, surrogate.Config{Fingerprint: "eval"},
		surrogateEvalBounds, holdout, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsperr: surrogate eval: %v\n", err)
		os.Exit(cliutil.ExitFailure)
	}
	if jsonOut {
		buf, err := json.MarshalIndent(struct {
			Samples  int                   `json:"samples"`
			LabelSec float64               `json:"label_sec"`
			Result   *surrogate.EvalResult `json:"result"`
		}{len(samples), label.Seconds(), res}, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(buf))
		return
	}
	fmt.Printf("surrogate eval: %d labeled samples (exact pipeline, %.1fs), train %d / held-out %d\n",
		len(samples), label.Seconds(), res.TrainN, res.TestN)
	fmt.Printf("ungated held-out MAE: %.3f log10 (default gate: coverage %.0f%%, MAE %.3f)\n",
		res.MAE, 100*res.GatedCoverage, res.GatedMAE)
	fmt.Println()
	fmt.Println("bound    coverage   served    MAE      max|err|")
	for _, p := range res.Curve {
		fmt.Printf("%-8.3g %7.1f%% %8d   %.3f    %.3f\n",
			p.Bound, 100*p.Coverage, p.Served, p.MAE, p.MaxErr)
	}
	fmt.Println("\n(bound = log10 uncertainty the gate will serve; escalated requests run exact and are error-free)")
}
