// Command tsperr runs the full error-rate estimation framework on one
// benchmark and reports the Table 2 row, the headline distribution numbers,
// and the resulting timing-speculation verdict.
//
// Usage:
//
//	tsperr [-scenarios N] [-timeout D] [-retries N] [-min-scenarios N]
//	       [-mc-trials N] [-mc-seed S] [-voltage V] [-temp C] [-json]
//	       [-explain] <benchmark>
//	tsperr -batch suite.json [-json] [flags]
//	tsperr -surrogate-eval [-surrogate-holdout F] [-surrogate-seed S] [-json]
//	tsperr -oppoint -target F [-min-ratio R] [-max-ratio R] [-steps N] <benchmark>
//
// Run with no arguments to list the available benchmarks. With -batch, the
// argument is a suite file ({"entries":[{"benchmark":...,"scenarios":...}]})
// run through the shared framework with identical entries computed once;
// results stream as text rows, or -json emits one document reusing the
// shared core.Report encoding per entry. -mc-trials appends a sharded Monte
// Carlo validation of the analytic distribution to the report.
//
// -voltage/-temp evaluate at an explicit operating condition (the cell-delay
// scaling law inflates delays and variability as the supply droops or the die
// heats); zero means the nominal 1.1 V / 25 C corner. -oppoint bisects the
// fastest frequency ratio whose error rate stays at or below -target at that
// condition and prints the resulting operating point (or -json, one document
// mirroring a point of tsperrd's /v1/oppoint response).
//
// Exit status is 2 for usage errors and 1 for analysis failures (in batch
// mode: if any entry failed); on failure every failing scenario is reported
// with its pipeline phase, not just the first.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"tsperr/internal/cell"
	"tsperr/internal/cliutil"
	"tsperr/internal/core"
	"tsperr/internal/harness"
	"tsperr/internal/mibench"
)

// splitLines breaks a FailureDetail block into lines for indentation.
func splitLines(s string) []string {
	return strings.Split(strings.TrimRight(s, "\n"), "\n")
}

const explainText = `The framework follows the flow of Figures 1 and 2 of the paper:

 1. Netlist generation & calibration — a 6-stage control network (decoder
    derived from the TS-V8 opcode table) and gate-level datapath units are
    generated and delay-calibrated so the point of first failure sits at
    1.13x the STA frequency; the working point is 1.15x.
 2. Datapath model training — Algorithm 1 measures the DTS of the data
    endpoints while targeted vectors activate carry chains and shifter
    layers of known depth.
 3. Control characterization — per basic block, per incoming edge, the
    control network is simulated at gate level and Algorithm 2 extracts each
    instruction's control DTS; a nop-instrumented pass yields the
    error-conditioned probabilities (Section 4.1).
 4. Instrumented simulation — the program runs once per input scenario; the
    trained datapath model converts operand-dependent activation depths into
    conditional error probabilities.
 5. Marginal probabilities — Equations (1) and (2) plus one linear system per
    CFG strongly connected component (Section 4.2).
 6. Statistics — the error count is approximated Poisson(lambda) with lambda
    approximately Normal; Chen-Stein and Stein bounds quantify the
    approximation error (Section 5); Equation (14) gives the CDF.`

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsperr: ")
	scenarios := flag.Int("scenarios", harness.DefaultScenarios, "input datasets")
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of the text summary")
	explain := flag.Bool("explain", false, "print the estimation-flow walkthrough and exit")
	timeout := flag.Duration("timeout", 0, "abort the analysis after this duration (0 = none)")
	retries := flag.Int("retries", 0, "per-scenario retries for transient failures")
	minScenarios := flag.Int("min-scenarios", 0,
		"proceed degraded if at least this many scenarios survive (0 = all must succeed)")
	mcTrials := flag.Int("mc-trials", 0,
		"validate the analytic distribution with this many sharded Monte Carlo trials (0 = off)")
	mcSeed := flag.Uint64("mc-seed", 0, "Monte Carlo seed (0 = the pipeline default)")
	batchPath := flag.String("batch", "",
		"run a JSON suite file instead of one benchmark; identical entries compute once")
	surrogateEval := flag.Bool("surrogate-eval", false,
		"evaluate the ML surrogate fast tier: label the suite exactly, train on a split, print the coverage-vs-accuracy curve")
	surrogateHoldout := flag.Float64("surrogate-holdout", 0,
		"held-out fraction for -surrogate-eval (0 = 0.3 default)")
	surrogateSeed := flag.Uint64("surrogate-seed", 42, "train/test split seed for -surrogate-eval")
	voltage := flag.Float64("voltage", 0, "supply voltage in volts (0 = nominal 1.1)")
	temp := flag.Float64("temp", 0, "die temperature in C (0 = nominal 25)")
	oppointMode := flag.Bool("oppoint", false,
		"bisect the fastest frequency ratio meeting -target at the given condition")
	target := flag.Float64("target", 0.01, "target error rate for -oppoint (fraction, not percent)")
	minRatio := flag.Float64("min-ratio", 1.0, "lower frequency-ratio bound for -oppoint")
	maxRatio := flag.Float64("max-ratio", 1.3, "upper frequency-ratio bound for -oppoint")
	steps := flag.Int("steps", 16, "bisection steps for -oppoint")
	modelCache := cliutil.ModelCacheFlags()
	flag.Parse()
	harness.SetModelCache(modelCache())
	cond := cell.OperatingCondition{VoltageV: *voltage, TempC: *temp}
	if err := harness.SetOperatingCondition(cond); err != nil {
		fmt.Fprintf(os.Stderr, "tsperr: %v\n", err)
		os.Exit(cliutil.ExitUsage)
	}

	if *explain {
		fmt.Println(explainText)
		return
	}
	if *surrogateEval {
		if flag.NArg() != 0 || *batchPath != "" {
			fmt.Fprintln(os.Stderr, "usage: tsperr -surrogate-eval [-surrogate-holdout F] [-surrogate-seed S] [-timeout D] [-json]")
			os.Exit(cliutil.ExitUsage)
		}
		runSurrogateEval(*timeout, *surrogateHoldout, *surrogateSeed, *jsonOut)
		return
	}
	if *oppointMode {
		if flag.NArg() != 1 || *batchPath != "" {
			fmt.Fprintln(os.Stderr, "usage: tsperr -oppoint -target F [-min-ratio R] [-max-ratio R] [-steps N] [-voltage V] [-temp C] [-json] <benchmark>")
			os.Exit(cliutil.ExitUsage)
		}
		runOppoint(flag.Arg(0), *scenarios, *timeout, cond,
			*target, *minRatio, *maxRatio, *steps, *jsonOut)
		return
	}
	opts := core.AnalyzeOpts{
		Retries:      *retries,
		MinScenarios: *minScenarios,
		MCTrials:     *mcTrials,
		MCSeed:       *mcSeed,
	}
	if *batchPath != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: tsperr -batch suite.json [-json] [flags] (no benchmark argument)")
			os.Exit(cliutil.ExitUsage)
		}
		runBatch(*batchPath, *timeout, *scenarios, opts, *jsonOut)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tsperr [-scenarios N] [-timeout D] [-retries N] [-min-scenarios N] [-mc-trials N] [-json] [-explain] <benchmark>")
		fmt.Fprintln(os.Stderr, "       tsperr -batch suite.json [-json] [flags]")
		fmt.Fprintln(os.Stderr, "available benchmarks:")
		for _, b := range mibench.All() {
			fmt.Fprintf(os.Stderr, "  %-13s (%s)\n", b.Name, b.Category)
		}
		os.Exit(cliutil.ExitUsage)
	}
	name := flag.Arg(0)
	ctx, cancel := cliutil.Context(*timeout)
	defer cancel()
	rep, err := harness.AnalyzeWithOpts(ctx, name, *scenarios, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsperr: %s: analysis failed:\n", name)
		for _, line := range splitLines(harness.FailureDetail(err)) {
			fmt.Fprintf(os.Stderr, "  %s\n", line)
		}
		os.Exit(cliutil.ExitFailure)
	}
	if rep.Degraded {
		fmt.Fprintf(os.Stderr, "tsperr: warning: degraded run, %d scenario(s) dropped:\n", rep.FailedScenarios)
		for _, line := range splitLines(harness.FailureDetail(rep.Failures)) {
			fmt.Fprintf(os.Stderr, "  %s\n", line)
		}
	}
	if *jsonOut {
		// The shared core.Report encoding — the same document tsperrd serves
		// — so scripted consumers parse one schema regardless of entry point.
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(buf))
		return
	}
	f, _ := harness.SharedFramework()
	pm := f.PerfModel()
	e := rep.Estimate

	fmt.Println(harness.Table2Header())
	fmt.Println(harness.Table2Row(rep))
	fmt.Println()
	mean := e.MeanErrorRate()
	fmt.Printf("error rate: mean %.3f%%  sd %.3f%%  (lambda %.1f over %.3g instructions)\n",
		100*mean, 100*e.StdErrorRate(), e.LambdaMean, e.TotalInsts)
	fmt.Printf("quantiles: P50 %.3f%%  P95 %.3f%%  P99 %.3f%%\n",
		100*e.ErrorRateQuantile(0.50), 100*e.ErrorRateQuantile(0.95),
		100*e.ErrorRateQuantile(0.99))
	fmt.Printf("bounds: d_K(lambda) <= %.3f, d_K(R_E) <= %.3f\n", e.DKLambda, e.DKCount)
	if mc := rep.MC; mc != nil {
		verdict := "within"
		if !mc.Within {
			verdict = "OUTSIDE"
		}
		fmt.Printf("monte carlo (%d trials, %d chunks): mean %.2f vs lambda %.2f; max CDF distance %.4f %s bound %.4f\n",
			mc.Trials, mc.Chunks, mc.Mean, mc.LambdaRef, mc.MaxCDFDistance, verdict, mc.Bound)
	}
	imp := pm.ImprovementPct(mean)
	verdict := "benefits from timing speculation"
	if imp < 0 {
		verdict = "is hurt by timing speculation"
	}
	fmt.Printf("performance at 1.15x frequency with replay-at-half-frequency: %+.2f%% — %s %s\n",
		imp, name, verdict)
	fmt.Printf("break-even error rate: %.3f%%\n", 100*pm.BreakEvenErrorRate())
}

// batchItemJSON is one entry of the -batch -json document; Report reuses the
// shared core.Report encoding, the same schema tsperrd serves.
type batchItemJSON struct {
	Index      int          `json:"index"`
	Name       string       `json:"name"`
	Key        string       `json:"key"`
	Dedup      bool         `json:"dedup,omitempty"`
	ElapsedSec float64      `json:"elapsed_sec"`
	Report     *core.Report `json:"report,omitempty"`
	Error      string       `json:"error,omitempty"`
}

type batchJSON struct {
	Items      []batchItemJSON `json:"items"`
	Computed   int             `json:"computed"`
	Deduped    int             `json:"deduped"`
	Failed     int             `json:"failed"`
	ElapsedSec float64         `json:"elapsed_sec"`
}

// runBatch executes a suite file. Text mode streams one row per entry as it
// lands; JSON mode emits the whole document at the end. Exits 1 when any
// entry failed, 2 when the suite itself is unusable.
func runBatch(path string, timeout time.Duration, scenarios int, opts core.AnalyzeOpts, jsonOut bool) {
	suite, err := harness.LoadSuite(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsperr: %v\n", err)
		os.Exit(cliutil.ExitUsage)
	}
	ctx, cancel := cliutil.Context(timeout)
	defer cancel()

	var onResult func(core.BatchItemResult)
	if !jsonOut {
		fmt.Println(harness.Table2Header())
		onResult = func(r core.BatchItemResult) {
			switch {
			case r.Err != nil:
				fmt.Printf("# %s: FAILED: %v\n", r.Name, r.Err)
			case r.Dedup:
				fmt.Printf("%s  (deduped)\n", harness.Table2Row(r.Report))
			default:
				fmt.Printf("%s  (%.2fs)\n", harness.Table2Row(r.Report), r.Elapsed.Seconds())
			}
		}
	}
	res, err := harness.RunSuite(ctx, suite, opts, scenarios, onResult)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsperr: %v\n", err)
		os.Exit(cliutil.ExitFailure)
	}
	if jsonOut {
		doc := batchJSON{
			Items:      make([]batchItemJSON, len(res.Items)),
			Computed:   res.Computed,
			Deduped:    res.Deduped,
			Failed:     res.Failed,
			ElapsedSec: res.Elapsed.Seconds(),
		}
		for i, r := range res.Items {
			doc.Items[i] = batchItemJSON{
				Index: r.Index, Name: r.Name, Key: r.Key, Dedup: r.Dedup,
				ElapsedSec: r.Elapsed.Seconds(), Report: r.Report,
			}
			if r.Err != nil {
				doc.Items[i].Error = r.Err.Error()
			}
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(buf))
	} else {
		fmt.Printf("suite: %d entries, %d computed, %d deduped, %d failed in %.2fs\n",
			len(res.Items), res.Computed, res.Deduped, res.Failed, res.Elapsed.Seconds())
	}
	if res.Failed > 0 {
		os.Exit(cliutil.ExitFailure)
	}
}
