package main

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// The smoke tests re-exec the test binary as the real command: TestMain
// diverts into main() when the marker env var is set, so flag parsing,
// usage text, and exit codes are exercised through the genuine entry point
// without a separate `go build`.
func TestMain(m *testing.M) {
	if os.Getenv("TSPERR_SMOKE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runSelf invokes the command under test with args and returns its exit
// code plus captured stdout/stderr.
func runSelf(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "TSPERR_SMOKE_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	code = 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return code, out.String(), errb.String()
}

func TestSmokeNoArgsIsUsage(t *testing.T) {
	code, _, stderr := runSelf(t)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (usage)\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "usage: oppoint") {
		t.Errorf("stderr missing usage line: %s", stderr)
	}
}

func TestSmokeTooManyArgsIsUsage(t *testing.T) {
	code, _, stderr := runSelf(t, "dijkstra", "typeset")
	if code != 2 || !strings.Contains(stderr, "usage: oppoint") {
		t.Fatalf("exit = %d, stderr = %s; want usage error", code, stderr)
	}
}

func TestSmokeUnknownFlagIsUsage(t *testing.T) {
	code, _, stderr := runSelf(t, "-no-such-flag", "dijkstra")
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "no-such-flag") {
		t.Errorf("stderr does not name the bad flag: %s", stderr)
	}
}

func TestSmokeBadRatioIsFailure(t *testing.T) {
	code, _, stderr := runSelf(t, "-ratios", "1.05,oops", "dijkstra")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (failure)\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "oops") {
		t.Errorf("stderr does not name the bad ratio token: %s", stderr)
	}
}

func TestSmokeUnknownBenchmarkIsFailure(t *testing.T) {
	code, _, stderr := runSelf(t, "no-such-benchmark")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (failure)\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "no-such-benchmark") {
		t.Errorf("stderr does not name the benchmark: %s", stderr)
	}
}
