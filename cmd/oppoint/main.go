// Command oppoint selects the best speculative operating point for a
// benchmark: it sweeps frequency ratios, estimates the error rate at each
// (re-training the datapath timing model per point), and reports expected
// speedup plus the probability that speculation stays profitable — the
// per-application operating point selection of the authors' companion work
// driven by this paper's estimator.
//
// Usage:
//
//	oppoint [-scenarios N] [-ratios 1.05,1.10,...] [-voltage V] [-temp C]
//	        [-timeout D] <benchmark>
//
// -voltage/-temp evaluate the sweep at an explicit operating condition (the
// cell-delay scaling law inflates delays and variability as the supply
// droops or the die heats); zero means the nominal 1.1 V / 25 C corner.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"tsperr/internal/cell"
	"tsperr/internal/cliutil"
	"tsperr/internal/core"
	"tsperr/internal/errormodel"
	"tsperr/internal/harness"
	"tsperr/internal/mibench"
	"tsperr/internal/modelcache"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oppoint: ")
	scenarios := flag.Int("scenarios", 4, "input datasets per evaluation")
	ratioList := flag.String("ratios", "1.05,1.10,1.13,1.15,1.18,1.21",
		"comma-separated frequency ratios to evaluate")
	timeout := flag.Duration("timeout", 0, "abort the sweep after this duration (0 = none)")
	voltage := flag.Float64("voltage", 0, "supply voltage in volts (0 = nominal 1.1)")
	temp := flag.Float64("temp", 0, "die temperature in C (0 = nominal 25)")
	modelCache := cliutil.ModelCacheFlags()
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: oppoint [-scenarios N] [-ratios ...] [-voltage V] [-temp C] [-timeout D] <benchmark>")
		os.Exit(cliutil.ExitUsage)
	}
	cond := cell.OperatingCondition{VoltageV: *voltage, TempC: *temp}
	if err := cond.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "oppoint: %v\n", err)
		os.Exit(cliutil.ExitUsage)
	}
	ctx, cancel := cliutil.Context(*timeout)
	defer cancel()
	var ratios []float64
	for _, tok := range strings.Split(*ratioList, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			log.Fatalf("bad ratio %q: %v", tok, err)
		}
		ratios = append(ratios, v)
	}
	b, err := mibench.ByName(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	// The sweep re-trains per ratio, but the base-point machine itself can
	// come from the persistent model cache (the operating condition is part
	// of the cache key, so each condition warms independently).
	opts := errormodel.DefaultOptions()
	opts.Cond = cond
	var fw *core.Framework
	if enabled, dir := modelCache(); enabled {
		if dir == "" {
			dir, _ = modelcache.DefaultDir()
		}
		if dir != "" {
			fw, _, err = core.NewFrameworkCached(opts, dir)
		}
	}
	if fw == nil && err == nil {
		fw, err = core.NewFramework(opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	spec := harness.SpecFor(b, *scenarios)
	points, best, err := fw.SelectOperatingPoint(ctx, b.Name, spec, ratios)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oppoint: %s: sweep failed:\n%s\n", b.Name, harness.FailureDetail(err))
		os.Exit(cliutil.ExitFailure)
	}
	fmt.Printf("%s: operating point sweep (base %.0f MHz, %s)\n\n",
		b.Name, fw.Machine.Opts.BaseFreqMHz, cond)
	fmt.Printf("%8s %10s %12s %10s %14s\n",
		"ratio", "freq(MHz)", "errors(%)", "speedup", "P(profitable)")
	for i, p := range points {
		mark := " "
		if i == best {
			mark = "*"
		}
		fmt.Printf("%7.2f%s %10.0f %12.4f %10.4f %14.3f\n",
			p.Ratio, mark, fw.Machine.Opts.BaseFreqMHz*p.Ratio,
			100*p.ErrorRate, p.Speedup, p.CDFBelowBreakEven)
	}
	fmt.Printf("\nbest: %.2fx (%.0f MHz), expected speedup %.4f\n",
		points[best].Ratio, fw.Machine.Opts.BaseFreqMHz*points[best].Ratio,
		points[best].Speedup)
}
