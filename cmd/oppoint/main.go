// Command oppoint selects the best speculative operating point for a
// benchmark: it sweeps frequency ratios, estimates the error rate at each
// (re-training the datapath timing model per point), and reports expected
// speedup plus the probability that speculation stays profitable — the
// per-application operating point selection of the authors' companion work
// driven by this paper's estimator.
//
// Usage:
//
//	oppoint [-scenarios N] [-ratios 1.05,1.10,...] [-timeout D] <benchmark>
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"tsperr/internal/cliutil"
	"tsperr/internal/core"
	"tsperr/internal/errormodel"
	"tsperr/internal/harness"
	"tsperr/internal/mibench"
	"tsperr/internal/modelcache"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("oppoint: ")
	scenarios := flag.Int("scenarios", 4, "input datasets per evaluation")
	ratioList := flag.String("ratios", "1.05,1.10,1.13,1.15,1.18,1.21",
		"comma-separated frequency ratios to evaluate")
	timeout := flag.Duration("timeout", 0, "abort the sweep after this duration (0 = none)")
	modelCache := cliutil.ModelCacheFlags()
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: oppoint [-scenarios N] [-ratios ...] [-timeout D] <benchmark>")
		os.Exit(cliutil.ExitUsage)
	}
	ctx, cancel := cliutil.Context(*timeout)
	defer cancel()
	var ratios []float64
	for _, tok := range strings.Split(*ratioList, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil {
			log.Fatalf("bad ratio %q: %v", tok, err)
		}
		ratios = append(ratios, v)
	}
	b, err := mibench.ByName(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	// The sweep re-trains per ratio, but the base-point machine itself can
	// come from the persistent model cache.
	var fw *core.Framework
	if enabled, dir := modelCache(); enabled {
		if dir == "" {
			dir, _ = modelcache.DefaultDir()
		}
		if dir != "" {
			fw, _, err = core.NewFrameworkCached(errormodel.DefaultOptions(), dir)
		}
	}
	if fw == nil && err == nil {
		fw, err = core.NewFramework(errormodel.DefaultOptions())
	}
	if err != nil {
		log.Fatal(err)
	}
	spec := harness.SpecFor(b, *scenarios)
	points, best, err := fw.SelectOperatingPoint(ctx, b.Name, spec, ratios)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oppoint: %s: sweep failed:\n%s\n", b.Name, harness.FailureDetail(err))
		os.Exit(cliutil.ExitFailure)
	}
	fmt.Printf("%s: operating point sweep (base %.0f MHz)\n\n",
		b.Name, fw.Machine.Opts.BaseFreqMHz)
	fmt.Printf("%8s %10s %12s %10s %14s\n",
		"ratio", "freq(MHz)", "errors(%)", "speedup", "P(profitable)")
	for i, p := range points {
		mark := " "
		if i == best {
			mark = "*"
		}
		fmt.Printf("%7.2f%s %10.0f %12.4f %10.4f %14.3f\n",
			p.Ratio, mark, fw.Machine.Opts.BaseFreqMHz*p.Ratio,
			100*p.ErrorRate, p.Speedup, p.CDFBelowBreakEven)
	}
	fmt.Printf("\nbest: %.2fx (%.0f MHz), expected speedup %.4f\n",
		points[best].Ratio, fw.Machine.Opts.BaseFreqMHz*points[best].Ratio,
		points[best].Speedup)
}
