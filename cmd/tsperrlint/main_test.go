package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module and chdirs into it, because
// the standalone driver loads packages relative to the working directory.
func writeModule(t *testing.T, files map[string]string) {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixturemod\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Chdir(dir)
}

// TestJSONGolden pins the -json output schema byte-for-byte: CI consumes
// it, so field renames or ordering changes must be deliberate.
func TestJSONGolden(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "json.golden"))
	if err != nil {
		t.Fatal(err)
	}
	writeModule(t, map[string]string{"a.go": `package fixturemod

func equalDelay(a, b float64) bool {
	return a == b
}
`})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2 (findings); stderr: %s", code, stderr.String())
	}
	if got := stdout.String(); got != string(golden) {
		t.Errorf("-json output diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}
	// The schema must also round-trip as the documented field set.
	var parsed []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &parsed); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if len(parsed) != 1 {
		t.Fatalf("got %d diagnostics, want 1", len(parsed))
	}
	for _, field := range []string{"file", "line", "column", "analyzer", "message"} {
		if _, ok := parsed[0][field]; !ok {
			t.Errorf("diagnostic is missing the %q field", field)
		}
	}
}

// TestJSONCleanTree: a clean run emits an empty JSON array (not null), so
// downstream jq pipelines never branch on output shape.
func TestJSONCleanTree(t *testing.T) {
	writeModule(t, map[string]string{"a.go": "package fixturemod\n\nfunc ok() int { return 1 }\n"})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Errorf("clean -json output = %q, want []", stdout.String())
	}
}

const suppressedSrc = `package fixturemod

func tieBreak(a, b float64) bool {
	//tsperrlint:ignore floatcmp exact tie is the documented contract
	return a == b
}

func alsoTied(a, b float64) bool {
	//tsperrlint:ignore floatcmp exact tie is the documented contract
	return a == b
}
`

// TestIgnoresInventory: -ignores lists each directive with its analyzers
// and reason, plus per-analyzer totals, and includes test files without
// needing -tests.
func TestIgnoresInventory(t *testing.T) {
	writeModule(t, map[string]string{
		"a.go": suppressedSrc,
		"a_test.go": `package fixturemod

import "testing"

func TestTie(t *testing.T) {
	//tsperrlint:ignore floatcmp asserted bit-identical in the oracle
	if 1.0 == 2.0 {
		t.Fatal()
	}
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-ignores", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "total floatcmp       3") {
		t.Errorf("inventory missing per-analyzer total (want floatcmp 3):\n%s", out)
	}
	if !strings.Contains(out, "a_test.go:6: [floatcmp] asserted bit-identical in the oracle") {
		t.Errorf("inventory missing the test-file directive:\n%s", out)
	}
}

// TestIgnoresBudget: counts at the budget pass; counts above it fail with
// exit 2 and a ratchet message.
func TestIgnoresBudget(t *testing.T) {
	writeModule(t, map[string]string{
		"a.go":        suppressedSrc,
		"under.budget": "# suppression ratchet\nfloatcmp 2\n",
		"over.budget":  "floatcmp 1\n",
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-ignores", "-budget", "under.budget", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("within budget: exit code = %d, want 0; stderr: %s", code, stderr.String())
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-ignores", "-budget", "over.budget", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("over budget: exit code = %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "suppression budget exceeded for floatcmp: 2 directive(s), budget 1") {
		t.Errorf("missing budget violation message, got: %s", stderr.String())
	}
}
