// Command tsperrlint is the repository's static-analysis driver. It runs
// the internal/lint pass suite (mapiterorder, ctxflow, guardedfield,
// floatcmp, detsource, slabalias, batchonce) in two modes, plus the
// netlist structural linter and the suppression inventory:
//
//	tsperrlint ./...                  standalone, over package patterns
//	tsperrlint -json ./...            same, machine-readable output
//	go vet -vettool=$(which tsperrlint) ./...   as a vet tool
//	tsperrlint -netlist               structural lint of generated netlists
//	tsperrlint -ignores ./...         inventory //tsperrlint:ignore directives
//	tsperrlint -ignores -budget lint.budget ./...   enforce the ratchet
//
// Exit status: 0 clean, 1 usage or load failure, 2 findings (or budget
// violations).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tsperr/internal/gen"
	"tsperr/internal/lint"
	"tsperr/internal/netlist"
)

// version is the toolID reported to the go command. `go vet` requires a
// three-field `name version hash` line whose third field is not "devel";
// it keys the vet result cache, so bump it when analyzer behavior changes.
const version = "tsperrlint-0.2.0"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tsperrlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: tsperrlint [flags] [package patterns | vet.cfg]\n")
		fs.PrintDefaults()
	}
	var (
		vFlag     = fs.String("V", "", "print version and exit (go vet handshake; use -V=full)")
		flagsFlag = fs.Bool("flags", false, "print the tool's flag schema as JSON and exit (go vet handshake)")
		analyzers = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		tests     = fs.Bool("tests", false, "also analyze in-package _test.go files (standalone mode)")
		jsonOut   = fs.Bool("json", false, "emit diagnostics as a JSON array (standalone mode)")
		netMode   = fs.Bool("netlist", false, "run the structural netlist linter over all generated units instead of Go analysis")
		ignores   = fs.Bool("ignores", false, "inventory //tsperrlint:ignore directives (always includes test files) instead of reporting findings")
		budget    = fs.String("budget", "", "with -ignores: enforce the suppression budget file; exceeding a count is a violation")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	if *vFlag != "" {
		// Third field must differ from "devel" or the go command rejects
		// the tool as uncacheable.
		fmt.Fprintf(stdout, "tsperrlint version %s\n", version)
		return 0
	}
	if *flagsFlag {
		// No flags are exposed through the vet driver; the empty schema
		// keeps `go vet -vettool` happy.
		fmt.Fprintln(stdout, "[]")
		return 0
	}

	if *netMode {
		return runNetlistLint(stdout, stderr)
	}
	if *ignores {
		return runIgnores(fs.Args(), *budget, stdout, stderr)
	}

	sel, err := lint.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnitchecker(rest[0], sel)
	}
	return runStandalone(rest, sel, *tests, *jsonOut, stdout, stderr)
}

// ---- standalone mode ----

// jsonDiagnostic is the machine-readable diagnostic schema emitted by
// -json, consumed by CI annotations; the field set is pinned by the golden
// test in main_test.go.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func runStandalone(patterns []string, sel []*lint.Analyzer, tests, jsonOut bool, stdout, stderr io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns, tests)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	cwd, _ := os.Getwd()
	var all []lint.Diagnostic
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, sel)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		for _, d := range diags {
			all = append(all, relativize(cwd, d))
		}
	}
	if jsonOut {
		out := make([]jsonDiagnostic, 0, len(all))
		for _, d := range all {
			out = append(out, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	} else {
		for _, d := range all {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(all) > 0 {
		fmt.Fprintf(stderr, "tsperrlint: %d finding(s)\n", len(all))
		return 2
	}
	return 0
}

// ---- suppression inventory and budget ----

// runIgnores lists every //tsperrlint:ignore directive in the matched
// packages (test files always included — most suppressions live there) and,
// with a budget file, enforces the ratchet: each analyzer's directive count
// must stay at or below its budgeted count, and analyzers missing from the
// budget get none. Counts are per analyzer name, so a multi-name directive
// spends from each budget it names.
func runIgnores(patterns []string, budgetFile string, stdout, stderr io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns, true)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	cwd, _ := os.Getwd()
	counts := map[string]int{}
	for _, pkg := range pkgs {
		for _, d := range lint.ParseDirectives(pkg.Fset, pkg.Files) {
			file := d.Pos.Filename
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
			if d.Err != "" {
				fmt.Fprintf(stdout, "%s:%d: MALFORMED: %s\n", file, d.Pos.Line, d.Err)
				counts["malformed"]++
				continue
			}
			fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", file, d.Pos.Line, strings.Join(d.Names, ","), d.Reason)
			for _, n := range d.Names {
				counts[n]++
			}
		}
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(stdout, "total %-14s %d\n", n, counts[n])
	}
	if budgetFile == "" {
		return 0
	}
	budgets, err := readBudget(budgetFile)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	violations := 0
	for _, n := range names {
		if counts[n] > budgets[n] {
			violations++
			fmt.Fprintf(stderr, "tsperrlint: suppression budget exceeded for %s: %d directive(s), budget %d — remove a suppression (the budget only ratchets down)\n",
				n, counts[n], budgets[n])
		}
	}
	if violations > 0 {
		return 2
	}
	return 0
}

// readBudget parses the budget file: `analyzer count` lines, #-comments
// and blank lines ignored.
func readBudget(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tsperrlint: reading budget: %w", err)
	}
	out := map[string]int{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var name string
		var n int
		if _, err := fmt.Sscanf(line, "%s %d", &name, &n); err != nil {
			return nil, fmt.Errorf("tsperrlint: %s:%d: bad budget line %q (want `analyzer count`)", path, i+1, line)
		}
		out[name] = n
	}
	return out, nil
}

// relativize shortens absolute diagnostic paths for terminal output.
func relativize(cwd string, d lint.Diagnostic) lint.Diagnostic {
	if cwd == "" || !filepath.IsAbs(d.Pos.Filename) {
		return d
	}
	if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d
}

// ---- go vet -vettool mode ----

// vetConfig mirrors the JSON the go command writes to <objdir>/vet.cfg.
// Only the fields the checker consumes are declared.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func runUnitchecker(cfgPath string, sel []*lint.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsperrlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tsperrlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The driver reads the vetx file for cross-package facts; these
	// analyzers carry none, so an empty file satisfies the protocol and
	// keeps the result cacheable.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
		}
	}
	if cfg.VetxOnly {
		// Dependency visited only to produce facts: nothing to analyze.
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "tsperrlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	compImp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return compImp.Import(path)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tconf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "tsperrlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &lint.Package{
		PkgPath: cfg.ImportPath,
		Dir:     cfg.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	diags, err := lint.RunAnalyzers(pkg, sel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsperrlint: %v\n", err)
		return 1
	}
	writeVetx()
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d.String())
		}
		return 2
	}
	return 0
}

// ---- netlist structural lint mode ----

// runNetlistLint generates every pipeline unit and runs the structural
// linter over each, printing severity-tagged findings.
func runNetlistLint(w, stderr io.Writer) int {
	units := []struct {
		name string
		n    *netlist.Netlist
	}{
		{"control", gen.Control().N},
		{"adder", gen.Adder().N},
		{"shifter", gen.Shifter().N},
		{"logic", gen.Logic().N},
		{"multiplier", gen.Multiplier().N},
	}
	sort.Slice(units, func(i, j int) bool { return units[i].name < units[j].name })
	count := 0
	for _, u := range units {
		fs := u.n.Lint(netlist.StdLibrary{})
		for _, f := range fs {
			count++
			fmt.Fprintf(w, "%s: %s\n", u.name, f)
		}
		fmt.Fprintf(w, "netlist %-10s %5d gates, %d finding(s)\n", u.name, u.n.NumGates(), len(fs))
	}
	if count > 0 {
		fmt.Fprintf(stderr, "tsperrlint: %d structural finding(s)\n", count)
		return 2
	}
	return 0
}
