// Command tsperrlint is the repository's static-analysis driver. It runs
// the internal/lint pass suite (mapiterorder, ctxflow, guardedfield,
// floatcmp) in two modes, plus the netlist structural linter:
//
//	tsperrlint ./...                  standalone, over package patterns
//	go vet -vettool=$(which tsperrlint) ./...   as a vet tool
//	tsperrlint -netlist               structural lint of generated netlists
//
// Exit status: 0 clean, 1 usage or load failure, 2 findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tsperr/internal/gen"
	"tsperr/internal/lint"
	"tsperr/internal/netlist"
)

// version is the toolID reported to the go command. `go vet` requires a
// three-field `name version hash` line whose third field is not "devel";
// it keys the vet result cache, so bump it when analyzer behavior changes.
const version = "tsperrlint-0.1.0"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("tsperrlint", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: tsperrlint [flags] [package patterns | vet.cfg]\n")
		fs.PrintDefaults()
	}
	var (
		vFlag     = fs.String("V", "", "print version and exit (go vet handshake; use -V=full)")
		flagsFlag = fs.Bool("flags", false, "print the tool's flag schema as JSON and exit (go vet handshake)")
		analyzers = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		tests     = fs.Bool("tests", false, "also analyze in-package _test.go files (standalone mode)")
		netMode   = fs.Bool("netlist", false, "run the structural netlist linter over all generated units instead of Go analysis")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	if *vFlag != "" {
		// Third field must differ from "devel" or the go command rejects
		// the tool as uncacheable.
		fmt.Printf("tsperrlint version %s\n", version)
		return 0
	}
	if *flagsFlag {
		// No flags are exposed through the vet driver; the empty schema
		// keeps `go vet -vettool` happy.
		fmt.Println("[]")
		return 0
	}

	if *netMode {
		return runNetlistLint(os.Stdout)
	}

	sel, err := lint.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runUnitchecker(rest[0], sel)
	}
	return runStandalone(rest, sel, *tests)
}

// ---- standalone mode ----

func runStandalone(patterns []string, sel []*lint.Analyzer, tests bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns, tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cwd, _ := os.Getwd()
	count := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, sel)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, d := range diags {
			count++
			fmt.Println(relativize(cwd, d).String())
		}
	}
	if count > 0 {
		fmt.Fprintf(os.Stderr, "tsperrlint: %d finding(s)\n", count)
		return 2
	}
	return 0
}

// relativize shortens absolute diagnostic paths for terminal output.
func relativize(cwd string, d lint.Diagnostic) lint.Diagnostic {
	if cwd == "" || !filepath.IsAbs(d.Pos.Filename) {
		return d
	}
	if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d
}

// ---- go vet -vettool mode ----

// vetConfig mirrors the JSON the go command writes to <objdir>/vet.cfg.
// Only the fields the checker consumes are declared.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func runUnitchecker(cfgPath string, sel []*lint.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsperrlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tsperrlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The driver reads the vetx file for cross-package facts; these
	// analyzers carry none, so an empty file satisfies the protocol and
	// keeps the result cacheable.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
		}
	}
	if cfg.VetxOnly {
		// Dependency visited only to produce facts: nothing to analyze.
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "tsperrlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	compImp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return compImp.Import(path)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tconf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "tsperrlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &lint.Package{
		PkgPath: cfg.ImportPath,
		Dir:     cfg.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	diags, err := lint.RunAnalyzers(pkg, sel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsperrlint: %v\n", err)
		return 1
	}
	writeVetx()
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d.String())
		}
		return 2
	}
	return 0
}

// ---- netlist structural lint mode ----

// runNetlistLint generates every pipeline unit and runs the structural
// linter over each, printing severity-tagged findings.
func runNetlistLint(w io.Writer) int {
	units := []struct {
		name string
		n    *netlist.Netlist
	}{
		{"control", gen.Control().N},
		{"adder", gen.Adder().N},
		{"shifter", gen.Shifter().N},
		{"logic", gen.Logic().N},
		{"multiplier", gen.Multiplier().N},
	}
	sort.Slice(units, func(i, j int) bool { return units[i].name < units[j].name })
	count := 0
	for _, u := range units {
		fs := u.n.Lint(netlist.StdLibrary{})
		for _, f := range fs {
			count++
			fmt.Fprintf(w, "%s: %s\n", u.name, f)
		}
		fmt.Fprintf(w, "netlist %-10s %5d gates, %d finding(s)\n", u.name, u.n.NumGates(), len(fs))
	}
	if count > 0 {
		fmt.Fprintf(os.Stderr, "tsperrlint: %d structural finding(s)\n", count)
		return 2
	}
	return 0
}
