// Command table2 regenerates Table 2 of the paper: per-benchmark program
// size, framework runtime split into training and simulation, error-rate
// mean and standard deviation, and the two approximation-error bounds.
//
// Usage:
//
//	table2 [-scenarios N] [-bench name] [-timeout D] [-retries N] [-min-scenarios N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tsperr/internal/cliutil"
	"tsperr/internal/core"
	"tsperr/internal/harness"
	"tsperr/internal/mibench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("table2: ")
	scenarios := flag.Int("scenarios", harness.DefaultScenarios,
		"input datasets per benchmark (data variation)")
	bench := flag.String("bench", "", "run a single benchmark instead of all twelve")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	retries := flag.Int("retries", 0, "per-scenario retries for transient failures")
	minScenarios := flag.Int("min-scenarios", 0,
		"proceed degraded if at least this many scenarios survive (0 = all must succeed)")
	modelCache := cliutil.ModelCacheFlags()
	flag.Parse()
	harness.SetModelCache(modelCache())
	ctx, cancel := cliutil.Context(*timeout)
	defer cancel()
	opts := core.AnalyzeOpts{Retries: *retries, MinScenarios: *minScenarios}

	names := []string{}
	if *bench != "" {
		names = append(names, *bench)
	} else {
		for _, b := range mibench.All() {
			names = append(names, b.Name)
		}
	}

	fmt.Println("Table 2: Results, Performance, and Accuracy of Our Framework")
	fmt.Println(harness.Table2Header())
	var totalInsts, totalBlocks int64
	var totalTrain, totalSim float64
	for _, name := range names {
		rep, err := harness.AnalyzeWithOpts(ctx, name, *scenarios, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "table2: %s: analysis failed:\n%s\n", name, harness.FailureDetail(err))
			os.Exit(cliutil.ExitFailure)
		}
		fmt.Println(harness.Table2Row(rep))
		totalInsts += rep.Instructions
		totalBlocks += int64(rep.BasicBlocks)
		totalTrain += rep.Training.Seconds()
		totalSim += rep.Simulation.Seconds()
	}
	fmt.Printf("%-13s %15d %7d %10.2f %10.2f\n",
		"Total", totalInsts, totalBlocks, totalTrain, totalSim)
}
