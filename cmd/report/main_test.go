package main

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// Re-exec smoke harness: TestMain diverts into main() under the marker env
// var so flag parsing and exit codes run through the real entry point. The
// full evaluation is far too slow for a smoke test, so only the flag layer
// is exercised here.
func TestMain(m *testing.M) {
	if os.Getenv("TSPERR_SMOKE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runSelf(t *testing.T, args ...string) (code int, stderr string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "TSPERR_SMOKE_MAIN=1")
	var errb bytes.Buffer
	cmd.Stderr = &errb
	err := cmd.Run()
	code = 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return code, errb.String()
}

func TestSmokeUnknownFlag(t *testing.T) {
	code, stderr := runSelf(t, "-no-such-flag")
	if code != 2 || !strings.Contains(stderr, "no-such-flag") {
		t.Fatalf("exit = %d, stderr = %s; want flag error", code, stderr)
	}
}

func TestSmokeHelpListsFlags(t *testing.T) {
	code, stderr := runSelf(t, "-h")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 for -h\nstderr: %s", code, stderr)
	}
	for _, f := range []string{"-scenarios", "-json", "-model-cache"} {
		if !strings.Contains(stderr, f) {
			t.Errorf("help output missing %s: %s", f, stderr)
		}
	}
}
