// Command report produces a single markdown report reproducing the paper's
// full evaluation: Table 2, a Figure 3 CDF table per benchmark, the
// operating-point anchors, and a Monte Carlo validation section. It is the
// one-shot "regenerate everything" entry point.
//
// Usage:
//
//	report [-scenarios N] [-o file.md] [-timeout D] [-retries N] [-min-scenarios N] [-json]
//
// With -json the evaluation is emitted as one machine-readable document
// (operating point + every benchmark's core.Report in the shared JSON
// schema) instead of markdown; the Monte Carlo section is markdown-only.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	"tsperr/internal/cliutil"
	"tsperr/internal/core"
	"tsperr/internal/errormodel"
	"tsperr/internal/harness"
	"tsperr/internal/mibench"
	"tsperr/internal/montecarlo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("report: ")
	scenarios := flag.Int("scenarios", harness.DefaultScenarios, "input datasets per benchmark")
	out := flag.String("o", "", "output file (default stdout)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	retries := flag.Int("retries", 0, "per-scenario retries for transient failures")
	minScenarios := flag.Int("min-scenarios", 0,
		"proceed degraded if at least this many scenarios survive per benchmark (0 = all must succeed)")
	jsonOut := flag.Bool("json", false, "emit the evaluation as JSON instead of markdown")
	modelCache := cliutil.ModelCacheFlags()
	flag.Parse()
	harness.SetModelCache(modelCache())
	ctx, cancel := cliutil.Context(*timeout)
	defer cancel()
	opts := core.AnalyzeOpts{Retries: *retries, MinScenarios: *minScenarios}

	var sb strings.Builder
	f, err := harness.SharedFramework()
	if err != nil {
		log.Fatal(err)
	}
	pm := f.PerfModel()

	if *jsonOut {
		if err := emitJSON(ctx, f, *scenarios, opts, *out); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Fprintf(&sb, "# tsperr evaluation report\n\n")
	fmt.Fprintf(&sb, "Machine: base %.0f MHz, PoFF %.2fx, working %.2fx (%.0f MHz), %s.\n\n",
		f.Machine.Opts.BaseFreqMHz, f.Machine.Opts.PoFFRatio,
		f.Machine.Opts.WorkingRatio, f.Machine.WorkingFreqMHz(),
		"replay-at-half-frequency correction")

	// ---- Table 2. ----
	fmt.Fprintf(&sb, "## Table 2\n\n")
	fmt.Fprintf(&sb, "| Benchmark | Instructions | Blocks | Mean(%%) | SD(%%) | dK(λ) | dK(R) | P95 rate(%%) | Perf(%%) |\n")
	fmt.Fprintf(&sb, "|---|---|---|---|---|---|---|---|---|\n")
	reports := map[string]*core.Report{}
	var degraded []*core.Report
	for _, b := range mibench.All() {
		rep, err := harness.AnalyzeWithOpts(ctx, b.Name, *scenarios, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: %s: analysis failed:\n%s\n", b.Name, harness.FailureDetail(err))
			os.Exit(cliutil.ExitFailure)
		}
		reports[b.Name] = rep
		if rep.Degraded {
			degraded = append(degraded, rep)
		}
		e := rep.Estimate
		mark := ""
		if rep.Degraded {
			mark = " †"
		}
		fmt.Fprintf(&sb, "| %s%s | %d | %d | %.3f | %.3f | %.3f | %.3f | %.3f | %+.2f |\n",
			rep.Name, mark, rep.Instructions, rep.BasicBlocks,
			100*e.MeanErrorRate(), 100*e.StdErrorRate(),
			e.DKLambda, e.DKCount,
			100*e.ErrorRateQuantile(0.95),
			pm.ImprovementPct(e.MeanErrorRate()))
	}
	for _, rep := range degraded {
		fmt.Fprintf(&sb, "\n† %s: degraded run, %d scenario(s) dropped:\n\n", rep.Name, rep.FailedScenarios)
		for _, line := range strings.Split(harness.FailureDetail(rep.Failures), "\n") {
			fmt.Fprintf(&sb, "  - %s\n", line)
		}
	}
	fmt.Fprintf(&sb, "\nBreak-even error rate at this operating point: %.3f%%.\n\n",
		100*pm.BreakEvenErrorRate())

	// ---- Figure 3. ----
	fmt.Fprintf(&sb, "## Figure 3 (CDFs with Section 6.4 bounds)\n\n")
	for _, b := range mibench.All() {
		rep := reports[b.Name]
		fmt.Fprintf(&sb, "### %s\n\n", b.Name)
		fmt.Fprintf(&sb, "| rate(%%) | perf(%%) | lower | cdf | upper |\n|---|---|---|---|---|\n")
		for _, p := range harness.Figure3Series(rep, pm, 1.2, 13) {
			fmt.Fprintf(&sb, "| %.2f | %+.2f | %.3f | %.3f | %.3f |\n",
				p.RatePct, p.ImprovementPct, p.Lo, p.CDF, p.Hi)
		}
		fmt.Fprintf(&sb, "\n")
	}

	// ---- Monte Carlo validation on the smallest benchmark. ----
	fmt.Fprintf(&sb, "## Monte Carlo validation\n\n")
	bm, _ := mibench.ByName("typeset")
	unscaled, err := f.Analyze(ctx, bm.Name, core.ProgramSpec{
		Prog: bm.Prog, Setup: bm.Setup, Scenarios: *scenarios,
	})
	if err != nil {
		log.Fatal(err)
	}
	var conds []*errormodel.Conditionals
	for _, sc := range unscaled.Scenarios {
		conds = append(conds, sc.Cond)
	}
	mc, err := montecarlo.Run(montecarlo.Spec{
		Prog: bm.Prog, Setup: bm.Setup, Cond: conds, Trials: 1500, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	ecdf := mc.CDF()
	worst := 0.0
	for k := 0.0; k < unscaled.Estimate.LambdaMean*4+10; k++ {
		if d := math.Abs(ecdf(k) - unscaled.Estimate.ErrorCountCDF(k)); d > worst {
			worst = d
		}
	}
	fmt.Fprintf(&sb, "typeset (unscaled): analytic λ = %.2f, Monte Carlo mean = %.2f; "+
		"max CDF distance %.4f vs bound %.4f.\n",
		unscaled.Estimate.LambdaMean, mc.Mean(), worst,
		unscaled.Estimate.DKLambda+unscaled.Estimate.DKCount)

	if *out == "" {
		fmt.Print(sb.String())
		return
	}
	if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// emitJSON writes the machine-readable evaluation: the operating point and
// every benchmark's report in the shared core.Report JSON schema (the same
// document cmd/tsperr -json prints and tsperrd serves).
func emitJSON(ctx context.Context, f *core.Framework, scenarios int, opts core.AnalyzeOpts, out string) error {
	pm := f.PerfModel()
	doc := struct {
		BaseFreqMHz      float64        `json:"base_freq_mhz"`
		WorkingFreqMHz   float64        `json:"working_freq_mhz"`
		WorkingRatio     float64        `json:"working_ratio"`
		BreakEvenRatePct float64        `json:"break_even_error_rate_pct"`
		Scenarios        int            `json:"scenarios"`
		Reports          []*core.Report `json:"reports"`
	}{
		BaseFreqMHz:      f.Machine.Opts.BaseFreqMHz,
		WorkingFreqMHz:   f.Machine.WorkingFreqMHz(),
		WorkingRatio:     f.Machine.Opts.WorkingRatio,
		BreakEvenRatePct: 100 * pm.BreakEvenErrorRate(),
		Scenarios:        scenarios,
	}
	for _, b := range mibench.All() {
		rep, err := harness.AnalyzeWithOpts(ctx, b.Name, scenarios, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", b.Name, err)
		}
		doc.Reports = append(doc.Reports, rep)
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "" {
		_, err := os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
