package main

import (
	"bytes"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// Re-exec smoke harness: TestMain diverts into main() under the marker env
// var so flag parsing and exit codes run through the real entry point.
func TestMain(m *testing.M) {
	if os.Getenv("TSPERR_SMOKE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runSelf(t *testing.T, args ...string) (code int, stderr string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "TSPERR_SMOKE_MAIN=1")
	var errb bytes.Buffer
	cmd.Stderr = &errb
	err := cmd.Run()
	code = 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return code, errb.String()
}

func TestSmokeRejectsPositionalArgs(t *testing.T) {
	code, stderr := runSelf(t, "stray-arg")
	if code != 2 || !strings.Contains(stderr, "usage: tsperrd") {
		t.Fatalf("exit = %d, stderr = %s; want usage error", code, stderr)
	}
}

func TestSmokeUnknownFlag(t *testing.T) {
	code, stderr := runSelf(t, "-no-such-flag")
	if code != 2 || !strings.Contains(stderr, "no-such-flag") {
		t.Fatalf("exit = %d, stderr = %s; want flag error", code, stderr)
	}
}
