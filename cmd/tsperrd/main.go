// Command tsperrd is the resident estimation service: it warms one shared
// framework (calibrated machine + trained datapath model, backed by the
// persistent model cache) and serves error-rate estimates over HTTP/JSON.
//
// Usage:
//
//	tsperrd [-listen :8080] [-workers N] [-queue N] [-cache N]
//	        [-voltage V] [-temp C]
//	        [-max-scenarios N] [-max-batch N] [-max-mc-trials N]
//	        [-request-timeout D] [-max-timeout D]
//	        [-drain-timeout D] [-model-cache] [-model-cache-dir DIR]
//	        [-role single|coordinator|worker] [-peers URL,URL,...]
//	        [-probe-interval D] [-chunk-timeout D] [-hedge-after D]
//	        [-peer-concurrency N]
//	        [-surrogate off|shadow|serve] [-surrogate-max-std S]
//	        [-surrogate-guard-band S] [-surrogate-min-train N]
//	        [-surrogate-retrain N]
//
// Surrogate fast tier:
//
//	off     (default) every estimate runs the exact pipeline
//	shadow  the ML surrogate trains on every exact result and its accuracy
//	        is tracked in /metrics (residual histogram), but it never serves
//	serve   confident predictions answer POST /v1/estimate directly (tier
//	        "surrogate" in the response); uncertain or near-threshold ones
//	        escalate to the exact pipeline, whose results keep training the
//	        model. The trained surrogate persists in the model cache keyed
//	        on the model fingerprint.
//
// Cluster roles:
//
//	single       (default) everything runs in this process
//	worker       additionally serves POST /v1/cluster/chunk so coordinators
//	             can fan Monte Carlo chunks onto this node
//	coordinator  fans Monte Carlo validations across -peers (worker daemons),
//	             routes plain estimates to their consistent-hash owner for
//	             cluster-wide dedup, and degrades to local execution when
//	             peers die; also serves chunks, so coordinators can peer with
//	             each other
//
// Endpoints:
//
//	POST /v1/estimate     {"benchmark":"typeset","scenarios":4}  — sync, or
//	                      {"benchmark":"typeset","async":true}   — 202 + job id;
//	                      optional freq_ratio/voltage/temp_c fields estimate at
//	                      an explicit operating point
//	POST /v1/oppoint      {"benchmark":"typeset","target_error_rate":1e-4,
//	                      "voltages":[1.1,1.0],"temps_c":[25,85]} — bisect the
//	                      fastest frequency per condition, return the
//	                      (period, voltage) frontier meeting the target
//	GET  /v1/jobs/{id}    poll an async job
//	POST /v1/batch        {"scenarios":[{...},{...}]} — 202 + batch id; the
//	                      suite runs through the dedup/cache layer with
//	                      bounded-queue pacing (identical entries compute once)
//	GET  /v1/batches/{id} per-entry status and incremental results
//	GET  /healthz         503 while the model warms, 200 once ready (liveness)
//	GET  /readyz          readiness: warm AND, on a coordinator, a quorum of
//	                      healthy peers
//	GET  /metrics         Prometheus text format
//
// On SIGINT/SIGTERM the daemon stops accepting connections and drains:
// every in-flight estimate runs to completion and its response is delivered
// before the process exits (bounded by -drain-timeout, after which in-flight
// work is aborted and the exit status is 1).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"tsperr/internal/cell"
	"tsperr/internal/cliutil"
	"tsperr/internal/cluster"
	"tsperr/internal/core"
	"tsperr/internal/harness"
	"tsperr/internal/mibench"
	"tsperr/internal/modelcache"
	"tsperr/internal/server"
	"tsperr/internal/surrogate"
)

// lazySurrogate defers the fast tier's construction to model warm-up (the
// adapter needs the shared framework) while giving server.New a stable
// handle at startup. Until set() publishes the real adapter every request
// escalates as untrained — the same behavior a freshly trained-out tier has.
type lazySurrogate struct {
	adapter atomic.Pointer[harness.SurrogateAdapter]
}

func (l *lazySurrogate) set(a *harness.SurrogateAdapter) { l.adapter.Store(a) }

func (l *lazySurrogate) Decide(benchmark string, scenarios int, threshold float64) server.SurrogateDecision {
	if a := l.adapter.Load(); a != nil {
		return a.Decide(benchmark, scenarios, threshold)
	}
	return server.SurrogateDecision{Reason: surrogate.ReasonUntrained}
}

func (l *lazySurrogate) Observe(benchmark string, scenarios int, rep *core.Report) (float64, bool) {
	if a := l.adapter.Load(); a != nil {
		return a.Observe(benchmark, scenarios, rep)
	}
	return 0, false
}

func (l *lazySurrogate) Stats() server.SurrogateStats {
	if a := l.adapter.Load(); a != nil {
		return a.Stats()
	}
	return server.SurrogateStats{}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tsperrd: ")
	listen := flag.String("listen", ":8080", "address to serve on")
	workers := flag.Int("workers", 2, "concurrent estimation computations")
	queueDepth := flag.Int("queue", 0,
		"pending-computation backlog before 503s (default 4x workers)")
	cacheSize := flag.Int("cache", 128, "LRU result-cache capacity (reports)")
	maxScenarios := flag.Int("max-scenarios", 64,
		"largest scenario fan-out a request may ask for")
	maxBatch := flag.Int("max-batch", 32,
		"largest scenario count one POST /v1/batch suite may carry")
	maxMCTrials := flag.Int("max-mc-trials", 5000,
		"largest Monte Carlo validation budget (mc_trials) a request may ask for")
	requestTimeout := flag.Duration("request-timeout", 2*time.Minute,
		"default per-computation deadline (0 = none)")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute,
		"cap on the per-request timeout_ms knob (0 = no cap)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long shutdown waits for in-flight estimates")
	role := flag.String("role", "single", "cluster role: single, coordinator, or worker")
	peersFlag := flag.String("peers", "",
		"comma-separated peer base URLs, e.g. http://10.0.0.2:8080 (coordinator role)")
	probeInterval := flag.Duration("probe-interval", 0,
		"healthy-peer probe period (0 = 2s default)")
	chunkTimeout := flag.Duration("chunk-timeout", 0,
		"remote Monte Carlo chunk deadline before the chunk is stolen back (0 = 30s default)")
	hedgeAfter := flag.Duration("hedge-after", 0,
		"speculatively re-dispatch a chunk still in flight after this long (0 = chunk-timeout/2)")
	peerConcurrency := flag.Int("peer-concurrency", 0,
		"chunks kept in flight per healthy peer (0 = 2 default)")
	surrogateMode := flag.String("surrogate", server.SurrogateOff,
		"ML fast tier: off, shadow (train and track accuracy only), or serve (confident predictions answer directly)")
	surrogateMaxStd := flag.Float64("surrogate-max-std", 0,
		"serve only predictions whose log10 uncertainty is within this bound (0 = 0.25 default)")
	surrogateGuardBand := flag.Float64("surrogate-guard-band", 0,
		"escalate predictions within this log10 distance of a request's error_rate_threshold (0 = 0.15 default)")
	surrogateMinTrain := flag.Int("surrogate-min-train", 0,
		"exact results observed before the surrogate first trains (0 = 32 default)")
	surrogateRetrain := flag.Int("surrogate-retrain", 0,
		"new observations between surrogate retrainings (0 = 16 default)")
	voltage := flag.Float64("voltage", 0,
		"supply voltage in volts the daemon serves at (0 = nominal 1.1)")
	temp := flag.Float64("temp", 0,
		"die temperature in C the daemon serves at (0 = nominal 25)")
	modelCache := cliutil.ModelCacheFlags()
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: tsperrd [-listen addr] [flags]; run with -h for the list")
		os.Exit(cliutil.ExitUsage)
	}
	harness.SetModelCache(modelCache())
	if err := harness.SetOperatingCondition(cell.OperatingCondition{VoltageV: *voltage, TempC: *temp}); err != nil {
		fmt.Fprintf(os.Stderr, "tsperrd: %v\n", err)
		os.Exit(cliutil.ExitUsage)
	}

	// The same content address the model cache files under: options (with the
	// operating condition) plus the cell library. Request keys therefore never
	// collide across operating points or library revisions — and cluster nodes
	// with different models refuse each other's chunks instead of mixing bits.
	fingerprint := modelcache.Key(harness.SharedOptions(), cell.Fingerprint())

	var lazyTier *lazySurrogate
	switch *surrogateMode {
	case server.SurrogateOff:
	case server.SurrogateShadow, server.SurrogateServe:
		lazyTier = &lazySurrogate{}
	default:
		fmt.Fprintf(os.Stderr, "tsperrd: unknown -surrogate %q (off, shadow, serve)\n", *surrogateMode)
		os.Exit(cliutil.ExitUsage)
	}

	var coord *cluster.Coordinator
	var chunkSource cluster.SpecSource
	switch *role {
	case "single":
		if *peersFlag != "" {
			fmt.Fprintln(os.Stderr, "tsperrd: -peers requires -role coordinator")
			os.Exit(cliutil.ExitUsage)
		}
	case "worker":
		if *peersFlag != "" {
			fmt.Fprintln(os.Stderr, "tsperrd: -peers requires -role coordinator")
			os.Exit(cliutil.ExitUsage)
		}
		chunkSource = harness.MCSpec
	case "coordinator":
		var peers []string
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		if len(peers) == 0 {
			fmt.Fprintln(os.Stderr, "tsperrd: -role coordinator requires -peers")
			os.Exit(cliutil.ExitUsage)
		}
		coord = cluster.New(cluster.Config{
			Peers:           peers,
			Fingerprint:     fingerprint,
			ProbeInterval:   *probeInterval,
			ChunkTimeout:    *chunkTimeout,
			HedgeAfter:      *hedgeAfter,
			PeerConcurrency: *peerConcurrency,
		})
		// Coordinators serve chunks too, so symmetric deployments (every
		// node a coordinator peering with the others) need no worker role.
		chunkSource = harness.MCSpec
	default:
		fmt.Fprintf(os.Stderr, "tsperrd: unknown -role %q (single, coordinator, worker)\n", *role)
		os.Exit(cliutil.ExitUsage)
	}

	cfg := server.Config{
		Analyze:     harness.AnalyzeWithOpts,
		AnalyzeAt:   harness.AnalyzeAtPoint,
		Fingerprint: fingerprint,
		Workers:     *workers,
		QueueDepth:  *queueDepth,
		CacheSize:   *cacheSize,
		Limits: server.Limits{
			DefaultScenarios: harness.DefaultScenarios,
			MaxScenarios:     *maxScenarios,
			MaxMCTrials:      *maxMCTrials,
			Lookup: func(name string) error {
				_, err := mibench.ByName(name)
				return err
			},
		},
		DefaultTimeout: *requestTimeout,
		MaxTimeout:     *maxTimeout,
		MaxBatch:       *maxBatch,
		ChunkSource:    chunkSource,
	}
	if coord != nil {
		cfg.Cluster = coord
	}
	if lazyTier != nil {
		cfg.Surrogate = lazyTier
		cfg.SurrogateMode = *surrogateMode
	}
	srv, err := server.New(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	if coord != nil {
		coord.Start(context.Background())
		log.Printf("coordinating %d peer(s); quorum %d", len(coord.PeerStatuses()), coord.Quorum())
	}

	// Warm the shared framework off the serving path so the listener is up
	// (and /healthz answers "warming") while calibration and training run —
	// or, with a warm model cache, restore in well under a second.
	go func() {
		t0 := time.Now()
		fw, err := harness.SharedFramework()
		if err != nil {
			log.Fatalf("model warm-up failed: %v", err)
		}
		if lazyTier != nil {
			dir := ""
			if enabled, d := modelCache(); enabled {
				if d == "" {
					if def, err := modelcache.DefaultDir(); err == nil {
						d = def
					}
				}
				dir = d
			}
			tier, err := surrogate.New(surrogate.Config{
				Fingerprint:  fingerprint,
				Dir:          dir,
				MaxStd:       *surrogateMaxStd,
				GuardBand:    *surrogateGuardBand,
				MinTrain:     *surrogateMinTrain,
				RetrainEvery: *surrogateRetrain,
			})
			if err != nil {
				log.Fatalf("surrogate tier failed: %v", err)
			}
			lazyTier.set(harness.NewSurrogateAdapter(fw, tier))
			st := tier.Stats()
			log.Printf("surrogate fast tier %s (model v%d, %d training rows)",
				*surrogateMode, st.ModelVersion, st.TrainSize)
		}
		srv.SetReady()
		log.Printf("model warm in %.2fs; serving estimates", time.Since(t0).Seconds())
	}()

	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s", *listen)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		// The listener died on its own (port in use, ...): nothing to drain.
		log.Fatal(err)
	case sig := <-sigCh:
		log.Printf("received %s; draining in-flight estimates (up to %s)", sig, *drainTimeout)
	}

	// Graceful drain: Shutdown stops the listener and waits for active
	// handlers — which are blocked on their computations — so every accepted
	// request gets its real result. Only then is the compute queue closed.
	// The drain deadline must NOT cancel the computations' base context
	// (they live under srv's own lifecycle), so a slow-but-finite estimate
	// still completes inside the window.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("drain incomplete (%v); aborting in-flight work", err)
		srv.Abort()
		_ = httpSrv.Close()
		os.Exit(cliutil.ExitFailure)
	}
	srv.Close()
	if coord != nil {
		coord.Stop()
	}
	if lazyTier != nil {
		// Let an in-flight background retraining finish (and persist) before
		// the process exits.
		if a := lazyTier.adapter.Load(); a != nil {
			a.Tier().Quiesce()
		}
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("drained cleanly")
}
