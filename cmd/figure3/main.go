// Command figure3 regenerates Figure 3 of the paper: the cumulative
// probability distribution of each program's error rate together with its
// lower and upper bound curves, and the performance-improvement labels of
// the top axis (speedup = 1.15 / (1 + 24 * error rate)).
//
// Usage:
//
//	figure3 [-scenarios N] [-bench name] [-points N] [-max maxRatePct] [-csv] [-timeout D]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"tsperr/internal/cliutil"
	"tsperr/internal/harness"
	"tsperr/internal/mibench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figure3: ")
	scenarios := flag.Int("scenarios", harness.DefaultScenarios, "input datasets per benchmark")
	bench := flag.String("bench", "", "single benchmark (default: all twelve)")
	points := flag.Int("points", 25, "CDF sample points")
	maxRate := flag.Float64("max", 1.6, "largest error rate (percent) on the axis")
	csv := flag.Bool("csv", false, "emit CSV series instead of text panels")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	modelCache := cliutil.ModelCacheFlags()
	flag.Parse()
	harness.SetModelCache(modelCache())
	ctx, cancel := cliutil.Context(*timeout)
	defer cancel()

	f, err := harness.SharedFramework()
	if err != nil {
		log.Fatal(err)
	}
	pm := f.PerfModel()

	names := []string{}
	if *bench != "" {
		names = append(names, *bench)
	} else {
		for _, b := range mibench.All() {
			names = append(names, b.Name)
		}
	}
	if *csv {
		fmt.Println("benchmark,rate_pct,perf_improvement_pct,cdf_lower,cdf,cdf_upper")
	}
	for _, name := range names {
		rep, err := harness.Analyze(ctx, name, *scenarios)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure3: %s: analysis failed:\n%s\n", name, harness.FailureDetail(err))
			os.Exit(cliutil.ExitFailure)
		}
		if *csv {
			for _, p := range harness.Figure3Series(rep, pm, *maxRate, *points) {
				fmt.Printf("%s,%.4f,%.3f,%.4f,%.4f,%.4f\n",
					name, p.RatePct, p.ImprovementPct, p.Lo, p.CDF, p.Hi)
			}
		} else {
			fmt.Println(harness.RenderFigure3(rep, pm, *maxRate, *points))
		}
	}
}
