#!/usr/bin/env bash
# End-to-end smoke of the surrogate fast tier: start tsperrd in serve mode
# with a tiny training threshold, verify that every pre-model request
# escalates as untrained while its exact result trains the model, wait for
# the background training to land, verify shadow residuals accumulate from
# forced-exact (mc_trials) requests, check that responses carry the tier
# field, then SIGTERM and require a clean drain.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${TSPERRD_PORT:-18323}"
ADDR="127.0.0.1:$PORT"
WORKDIR="$(mktemp -d)"

PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
    echo "surrogate-smoke: FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$WORKDIR/tsperrd.log" >&2 || true
    echo "--- metrics ---" >&2
    curl -s "http://$ADDR/metrics" >&2 || true
    exit 1
}

metric() { # metric <fixed-string line prefix>
    # Buffer the scrape: awk's early exit would otherwise kill curl's pipe
    # and trip pipefail. Prefix is matched as a fixed string so labeled
    # series ({reason="..."}) need no regex escaping.
    local scrape
    scrape=$(curl -s "http://$ADDR/metrics") || return 1
    awk -v p="$1" 'index($0, p) == 1 {print $2; exit}' <<<"$scrape"
}

go build -o "$WORKDIR/tsperrd" ./cmd/tsperrd
"$WORKDIR/tsperrd" -listen "$ADDR" -model-cache-dir "$WORKDIR/cache" \
    -surrogate serve -surrogate-min-train 4 -surrogate-retrain 4 \
    >"$WORKDIR/tsperrd.log" 2>&1 &
PID=$!

code=""
for _ in $(seq 1 150); do
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/healthz" || true)
    [ "$code" = 200 ] && break
    sleep 0.2
done
[ "$code" = 200 ] || fail "daemon never became healthy (last /healthz: $code)"

# Phase 1 — untrained gate honesty: with no model yet, every distinct request
# must escalate to the exact tier (reason untrained) and be answered exactly,
# while its result is fed back as training data.
for b in typeset dijkstra patricia stringsearch; do
    body=$(curl -sf -X POST "http://$ADDR/v1/estimate" \
        -d "{\"benchmark\":\"$b\",\"scenarios\":2}") || fail "estimate $b failed"
    echo "$body" | grep -q '"tier": *"exact"' || fail "$b pre-model response not exact tier: $body"
done

esc=$(metric 'tsperrd_surrogate_escalations_total{reason="untrained"}')
[ "$esc" = 4 ] || fail "expected 4 untrained escalations, got '$esc'"
obs=$(metric 'tsperrd_surrogate_observations_total')
[ "$obs" = 4 ] || fail "expected 4 observations, got '$obs'"

# The 4th observation crosses -surrogate-min-train and triggers a background
# training; wait for it to land.
trainings=""
for _ in $(seq 1 100); do
    trainings=$(metric 'tsperrd_surrogate_trainings_total')
    [ -n "$trainings" ] && [ "$trainings" -ge 1 ] && break
    sleep 0.2
done
[ -n "$trainings" ] && [ "$trainings" -ge 1 ] || fail "surrogate never trained (trainings='$trainings')"
ver=$(metric 'tsperrd_surrogate_model_version')
[ -n "$ver" ] && [ "$ver" -ge 1 ] || fail "model version still '$ver' after training"

# Phase 2 — shadow accuracy: mc_trials requests always run exact (Monte Carlo
# is exact-tier-only), but with a model present each exact result now also
# yields an out-of-sample residual in the shadow histogram.
for b in typeset dijkstra patricia; do
    curl -sf -X POST "http://$ADDR/v1/estimate" \
        -d "{\"benchmark\":\"$b\",\"scenarios\":2,\"mc_trials\":50}" >/dev/null \
        || fail "mc estimate $b failed"
done
resid=$(metric 'tsperrd_surrogate_residual_log10_count')
[ -n "$resid" ] && [ "$resid" -ge 3 ] || fail "expected >=3 shadow residuals, got '$resid'"
obs=$(metric 'tsperrd_surrogate_observations_total')
[ "$obs" = 7 ] || fail "expected 7 observations after mc phase, got '$obs'"

# Phase 3 — serving plumbing: a novel request consults the trained gate; the
# response must declare its tier either way (serve or honest escalation), and
# the decision must show up in the hit/escalation counters.
serving=$(metric 'tsperrd_surrogate_serving')
[ "$serving" = 1 ] || fail "serving gauge = '$serving', want 1"
body=$(curl -sf -X POST "http://$ADDR/v1/estimate" \
    -d '{"benchmark":"dijkstra","scenarios":4}') || fail "novel estimate failed"
echo "$body" | grep -q '"tier": *"' || fail "novel response missing tier field: $body"
hits=$(metric 'tsperrd_surrogate_hits_total')
unc=$(metric 'tsperrd_surrogate_escalations_total{reason="uncertain"}')
total=$((hits + unc + esc))
[ "$total" -ge 5 ] || fail "gate decisions unaccounted for (hits=$hits uncertain=$unc untrained=$esc)"

kill -TERM "$PID"
wait "$PID" || fail "daemon exited non-zero after SIGTERM"
grep -q "drained cleanly" "$WORKDIR/tsperrd.log" || fail "missing clean-drain log line"
PID=""
echo "surrogate-smoke: OK (4 untrained escalations, $trainings training(s), $resid shadow residuals, tier field present; clean drain)"
