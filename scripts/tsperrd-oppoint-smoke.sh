#!/usr/bin/env bash
# End-to-end smoke of the operating-point search: start tsperrd, wait for the
# model to warm, POST /v1/oppoint with a 2x2 voltage/temperature grid, check
# the response carries a frontier and that a warm re-run answers every
# bisection probe from the cache (sub-request dedup visible in /metrics),
# then SIGTERM and require a clean drain.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${TSPERRD_PORT:-18325}"
ADDR="127.0.0.1:$PORT"
WORKDIR="$(mktemp -d)"

PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
    echo "oppoint-smoke: FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$WORKDIR/tsperrd.log" >&2 || true
    exit 1
}

go build -o "$WORKDIR/tsperrd" ./cmd/tsperrd
"$WORKDIR/tsperrd" -listen "$ADDR" -model-cache-dir "$WORKDIR/cache" \
    >"$WORKDIR/tsperrd.log" 2>&1 &
PID=$!

code=""
for _ in $(seq 1 150); do
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/healthz" || true)
    [ "$code" = 200 ] && break
    sleep 0.2
done
[ "$code" = 200 ] || fail "daemon never became healthy (last /healthz: $code)"

req='{"benchmark":"typeset","scenarios":2,"target_error_rate":0.02,
      "voltages":[1.1,1.05],"temps_c":[25,85],"min_ratio":1.0,"max_ratio":1.2,"steps":3}'

# Cold search: every bisection probe is a fresh computation.
body=$(curl -sf -X POST "http://$ADDR/v1/oppoint" -d "$req") \
    || fail "cold oppoint search failed"
echo "$body" | grep -q '"frontier"' || fail "response missing frontier: $body"
echo "$body" | grep -q '"voltage": 1.05' || fail "grid condition missing from points: $body"

subs_cold=$(curl -s "http://$ADDR/metrics" \
    | awk '/^tsperrd_oppoint_subrequests_total/ {print $2}')
hits_cold=$(curl -s "http://$ADDR/metrics" \
    | awk '/^tsperrd_oppoint_subrequest_cache_hits_total/ {print $2}')
[ -n "$subs_cold" ] && [ "$subs_cold" -gt 0 ] \
    || fail "no oppoint sub-requests counted: '$subs_cold'"

# Warm re-run of the identical grid: same sub-request count again, and every
# single one must be a cache hit — zero new computations.
warm=$(curl -sf -X POST "http://$ADDR/v1/oppoint" -d "$req") \
    || fail "warm oppoint search failed"
[ "$(echo "$body" | grep -c '"ratio"')" = "$(echo "$warm" | grep -c '"ratio"')" ] \
    || fail "warm re-run changed the point set"

subs_warm=$(curl -s "http://$ADDR/metrics" \
    | awk '/^tsperrd_oppoint_subrequests_total/ {print $2}')
hits_warm=$(curl -s "http://$ADDR/metrics" \
    | awk '/^tsperrd_oppoint_subrequest_cache_hits_total/ {print $2}')
new_subs=$((subs_warm - subs_cold))
new_hits=$((hits_warm - hits_cold))
[ "$new_subs" -gt 0 ] || fail "warm run issued no sub-requests"
[ "$new_hits" = "$new_subs" ] \
    || fail "warm run recomputed: $new_hits cache hits for $new_subs sub-requests"

searches=$(curl -s "http://$ADDR/metrics" \
    | awk '/^tsperrd_oppoint_searches_total/ {print $2}')

kill -TERM "$PID"
wait "$PID" || fail "daemon exited non-zero after SIGTERM"
grep -q "drained cleanly" "$WORKDIR/tsperrd.log" || fail "missing clean-drain log line"
PID=""
echo "oppoint-smoke: OK ($searches per-condition searches; warm run $new_hits/$new_subs from cache; clean drain)"
