#!/usr/bin/env bash
# End-to-end smoke of the tsperrd daemon: start it with a tiny scenario
# budget, wait for the model to warm, run one sync estimate, fire a burst of
# identical requests (dedup + cache must keep the computation count at one
# per distinct request), then SIGTERM and require a clean drain.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${TSPERRD_PORT:-18321}"
ADDR="127.0.0.1:$PORT"
WORKDIR="$(mktemp -d)"

PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
    echo "smoke: FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$WORKDIR/tsperrd.log" >&2 || true
    exit 1
}

go build -o "$WORKDIR/tsperrd" ./cmd/tsperrd
"$WORKDIR/tsperrd" -listen "$ADDR" -model-cache-dir "$WORKDIR/cache" \
    >"$WORKDIR/tsperrd.log" 2>&1 &
PID=$!

code=""
for _ in $(seq 1 150); do
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/healthz" || true)
    [ "$code" = 200 ] && break
    sleep 0.2
done
[ "$code" = 200 ] || fail "daemon never became healthy (last /healthz: $code)"

body=$(curl -sf -X POST "http://$ADDR/v1/estimate" \
    -d '{"benchmark":"typeset","scenarios":2}') || fail "sync estimate failed"
echo "$body" | grep -q '"name": "typeset"' || fail "estimate response missing report: $body"

# Burst of identical requests: all must succeed, and the daemon must compute
# dijkstra exactly once (the burst dedups or hits the cache).
pids=()
for _ in $(seq 1 16); do
    curl -sf -X POST "http://$ADDR/v1/estimate" \
        -d '{"benchmark":"dijkstra","scenarios":2}' >/dev/null &
    pids+=("$!")
done
for p in "${pids[@]}"; do
    wait "$p" || fail "burst request failed"
done

comp=$(curl -s "http://$ADDR/metrics" | awk '/^tsperrd_computations_total/ {print $2}')
[ "$comp" = 2 ] || fail "expected 2 computations (typeset + dijkstra burst), got '$comp'"

kill -TERM "$PID"
wait "$PID" || fail "daemon exited non-zero after SIGTERM"
grep -q "drained cleanly" "$WORKDIR/tsperrd.log" || fail "missing clean-drain log line"
PID=""
echo "smoke: OK (2 computations for 17 requests; clean drain)"
