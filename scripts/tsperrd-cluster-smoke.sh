#!/usr/bin/env bash
# Chaos smoke of the tsperrd cluster: one coordinator fanning Monte Carlo
# chunks across two workers, one of which is SIGKILLed mid-run. The estimate
# must still return a complete, non-degraded validation (every chunk executed
# exactly once — stolen back locally or by the surviving worker), its
# deterministic Monte Carlo section must be byte-identical to a single-node
# run of the same request, and the coordinator must still drain cleanly.
set -euo pipefail
cd "$(dirname "$0")/.."

BASE="${TSPERRD_CLUSTER_PORT:-18331}"
COORD="127.0.0.1:$BASE"
WORKER_A="127.0.0.1:$((BASE + 1))"
WORKER_B="127.0.0.1:$((BASE + 2))"
WORKDIR="$(mktemp -d)"

PIDS=()
cleanup() {
    for p in "${PIDS[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

fail() {
    echo "cluster-smoke: FAIL: $*" >&2
    for log in coord worker-a worker-b; do
        echo "--- $log log ---" >&2
        cat "$WORKDIR/$log.log" >&2 || true
    done
    exit 1
}

wait_http() { # wait_http URL [tries]
    local code="" tries="${2:-150}"
    for _ in $(seq 1 "$tries"); do
        code=$(curl -s -o /dev/null -w '%{http_code}' "$1" || true)
        [ "$code" = 200 ] && return 0
        sleep 0.2
    done
    return 1
}

go build -o "$WORKDIR/tsperrd" ./cmd/tsperrd

# Worker A first: it trains the model and populates the shared cache, so the
# other two nodes restore from disk instead of racing the training.
"$WORKDIR/tsperrd" -listen "$WORKER_A" -role worker \
    -model-cache-dir "$WORKDIR/cache" >"$WORKDIR/worker-a.log" 2>&1 &
PIDS+=("$!")
disown "$!"
wait_http "http://$WORKER_A/healthz" || fail "worker A never became healthy"

"$WORKDIR/tsperrd" -listen "$WORKER_B" -role worker \
    -model-cache-dir "$WORKDIR/cache" >"$WORKDIR/worker-b.log" 2>&1 &
WORKER_B_PID="$!"
PIDS+=("$WORKER_B_PID")
disown "$WORKER_B_PID"

"$WORKDIR/tsperrd" -listen "$COORD" -role coordinator \
    -peers "http://$WORKER_A,http://$WORKER_B" \
    -model-cache-dir "$WORKDIR/cache" >"$WORKDIR/coord.log" 2>&1 &
COORD_PID="$!"
PIDS+=("$COORD_PID")

wait_http "http://$WORKER_B/healthz" || fail "worker B never became healthy"
wait_http "http://$COORD/readyz" || fail "coordinator never became ready"

# Wait until the coordinator's probes have admitted both peers, so the run
# below actually fans out before the chaos starts.
peers=""
for _ in $(seq 1 50); do
    peers=$(curl -s "http://$COORD/readyz" | grep -c '"healthy": true' || true)
    [ "$peers" = 2 ] && break
    sleep 0.2
done
[ "$peers" = 2 ] || fail "coordinator sees $peers healthy peers, want 2"

# Reference: the same Monte Carlo request on a single node. Its "montecarlo"
# section is fully deterministic (trials, seed, moments, CDF distance), so
# the distributed run must reproduce it byte for byte.
REQ='{"benchmark":"typeset","scenarios":2,"mc_trials":5000}'
curl -sf -X POST "http://$WORKER_A/v1/estimate" -d "$REQ" \
    >"$WORKDIR/ref.json" || fail "single-node reference estimate failed"

# Distributed run, with worker B SIGKILLed mid-flight: its in-flight chunks
# must be stolen back and re-executed by the survivors.
curl -sf -X POST "http://$COORD/v1/estimate" -d "$REQ" \
    >"$WORKDIR/dist.json" &
CURL_PID="$!"
sleep 0.5
kill -9 "$WORKER_B_PID" 2>/dev/null || true
wait "$CURL_PID" || fail "distributed estimate failed after worker kill"

mc_section() { sed -n '/"montecarlo": {/,/}/p' "$1"; }
mc_section "$WORKDIR/dist.json" >"$WORKDIR/dist.mc"
mc_section "$WORKDIR/ref.json" >"$WORKDIR/ref.mc"
[ -s "$WORKDIR/dist.mc" ] || fail "distributed response carries no montecarlo section"
grep -q '"trials": 5000' "$WORKDIR/dist.mc" || fail "validation incomplete: $(cat "$WORKDIR/dist.mc")"
diff -u "$WORKDIR/ref.mc" "$WORKDIR/dist.mc" >/dev/null \
    || fail "distributed montecarlo section diverges from single-node run: $(diff "$WORKDIR/ref.mc" "$WORKDIR/dist.mc")"

# Every chunk was delivered exactly once, wherever it ran.
chunks=$(grep -o '"chunks": [0-9]*' "$WORKDIR/dist.mc" | awk '{print $2}')
metrics=$(curl -s "http://$COORD/metrics")
remote=$(echo "$metrics" | awk '/^tsperrd_cluster_remote_chunks_total/ {print $2}')
local_=$(echo "$metrics" | awk '/^tsperrd_cluster_local_chunks_total/ {print $2}')
[ "$((remote + local_))" = "$chunks" ] \
    || fail "delivered chunks $remote remote + $local_ local != $chunks total"

kill -TERM "$COORD_PID"
wait "$COORD_PID" || fail "coordinator exited non-zero after SIGTERM"
grep -q "drained cleanly" "$WORKDIR/coord.log" || fail "coordinator missing clean-drain log line"

echo "cluster-smoke: OK ($chunks chunks: $remote remote + $local_ local; worker killed mid-run; montecarlo section byte-identical to single-node)"
